//! Topology builders.
//!
//! All of the paper's experiments use a single-bottleneck "dumbbell":
//! hosts on the left send through `left router -> right router` to hosts
//! on the right, ACKs and reverse-path data share the mirror link. Access
//! links are fast and short so the shared link is the only bottleneck.
//!
//! ```text
//!  s0 ─┐                      ┌─ d0
//!  s1 ─┤ ... ── R1 ═════ R2 ──┤ ...
//!  sN ─┘    (bottleneck, RED) └─ dN
//! ```

use crate::faults::FaultPlan;
use crate::ids::{LinkId, NodeId};
use crate::link::{Link, LossPattern, MarkPattern};
use crate::queue::{DropTail, QueueDiscipline, Red, RedConfig};
use crate::sim::Simulator;
use crate::time::{transmission_time, SimDuration};

/// The paper's standard packet size in bytes (Section 3).
pub const PAPER_PKT_SIZE: u32 = 1000;
/// One-way bottleneck propagation delay of the standard scenario.
pub const PAPER_BOTTLENECK_DELAY: SimDuration = SimDuration::from_millis(23);
/// Access link rate, both sides, of the standard scenario (b/s).
pub const PAPER_ACCESS_BPS: f64 = 1e9;
/// One-way access link propagation delay of the standard scenario.
pub const PAPER_ACCESS_DELAY: SimDuration = SimDuration::from_millis(1);
/// Base RTT of the standard path: `2 * (1 + 23 + 1) ms`.
pub const PAPER_RTT: SimDuration = SimDuration::from_millis(50);

/// Buffer discipline to install at the bottleneck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueKind {
    /// RED with the paper's Section 3 sizing: capacity 2.5x BDP,
    /// thresholds 0.25x / 1.25x BDP, ns-2 default weight and max_p.
    PaperRed,
    /// RED with explicit parameters.
    Red(RedConfig),
    /// FIFO with a hard limit in packets.
    DropTail(usize),
}

/// Parameters of a dumbbell topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DumbbellConfig {
    /// Bottleneck rate in bits per second.
    pub bottleneck_bps: f64,
    /// One-way bottleneck propagation delay.
    pub bottleneck_delay: SimDuration,
    /// Access link rate in bits per second (both sides).
    pub access_bps: f64,
    /// One-way access link propagation delay.
    pub access_delay: SimDuration,
    /// Packet size used to size RED thresholds (bytes).
    pub pkt_size: u32,
    /// Bottleneck buffer discipline.
    pub queue: QueueKind,
}

impl DumbbellConfig {
    /// The paper's standard scenario: ~50 ms RTT (1 ms access + 23 ms
    /// bottleneck each way), fast access links, 1000-byte packets, RED
    /// sized per Section 3.
    pub fn paper(bottleneck_bps: f64) -> Self {
        DumbbellConfig {
            bottleneck_bps,
            bottleneck_delay: PAPER_BOTTLENECK_DELAY,
            access_bps: PAPER_ACCESS_BPS,
            access_delay: PAPER_ACCESS_DELAY,
            pkt_size: PAPER_PKT_SIZE,
            queue: QueueKind::PaperRed,
        }
    }

    /// Round-trip propagation delay of the configured path (no queueing).
    pub fn base_rtt(&self) -> SimDuration {
        (self.access_delay + self.bottleneck_delay + self.access_delay) * 2
    }

    /// Bandwidth-delay product of the bottleneck in packets.
    pub fn bdp_packets(&self) -> f64 {
        self.bottleneck_bps * self.base_rtt().as_secs_f64() / (8.0 * self.pkt_size as f64)
    }

    fn make_bottleneck_queue(&self) -> Box<dyn QueueDiscipline> {
        match self.queue {
            QueueKind::PaperRed => {
                let mean_pkt = transmission_time(self.pkt_size, self.bottleneck_bps);
                Box::new(Red::new(RedConfig::paper_defaults(
                    self.bdp_packets(),
                    mean_pkt,
                )))
            }
            QueueKind::Red(cfg) => Box::new(Red::new(cfg)),
            QueueKind::DropTail(cap) => Box::new(DropTail::new(cap)),
        }
    }
}

/// Optional attachments for a bottleneck link pair: scripted loss, ECN
/// marking and fault-injection plans, in either direction. One builder
/// serves both topologies — [`Dumbbell::build_with`] applies it to the
/// shared link pair, [`ParkingLot::build_with`] to the first hop.
#[derive(Default)]
pub struct DumbbellOptions {
    forward_loss: Option<Box<dyn LossPattern>>,
    forward_marker: Option<Box<dyn MarkPattern>>,
    reverse_loss: Option<Box<dyn LossPattern>>,
    forward_faults: Option<FaultPlan>,
    reverse_faults: Option<FaultPlan>,
}

impl DumbbellOptions {
    /// No attachments: plain congested links.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scripted loss on the forward (congested-direction) link — the
    /// smoothness experiments' knob.
    pub fn forward_loss(mut self, loss: Box<dyn LossPattern>) -> Self {
        self.forward_loss = Some(loss);
        self
    }

    /// ECN marking pattern on the forward link — the marking-model
    /// validations' knob.
    pub fn forward_marker(mut self, marker: Box<dyn MarkPattern>) -> Self {
        self.forward_marker = Some(marker);
        self
    }

    /// Scripted loss on the *reverse* link: the congested-ACK-path
    /// scenario, where data flows unmolested while acknowledgments and
    /// feedback reports are thinned on the way back.
    pub fn reverse_loss(mut self, loss: Box<dyn LossPattern>) -> Self {
        self.reverse_loss = Some(loss);
        self
    }

    /// Deterministic fault plan (see [`crate::faults`]) on the forward
    /// link — the chaos-sweep topology.
    pub fn forward_faults(mut self, plan: FaultPlan) -> Self {
        self.forward_faults = Some(plan);
        self
    }

    /// Deterministic fault plan on the reverse link.
    pub fn reverse_faults(mut self, plan: FaultPlan) -> Self {
        self.reverse_faults = Some(plan);
        self
    }

    /// Apply the forward-direction attachments to a built link.
    fn decorate_forward(&mut self, mut link: Link) -> Link {
        if let Some(loss) = self.forward_loss.take() {
            link = link.with_loss(loss);
        }
        if let Some(marker) = self.forward_marker.take() {
            link = link.with_marker(marker);
        }
        if let Some(plan) = self.forward_faults.take() {
            link = link.with_faults(plan);
        }
        link
    }

    /// Apply the reverse-direction attachments to a built link.
    fn decorate_reverse(&mut self, mut link: Link) -> Link {
        if let Some(loss) = self.reverse_loss.take() {
            link = link.with_loss(loss);
        }
        if let Some(plan) = self.reverse_faults.take() {
            link = link.with_faults(plan);
        }
        link
    }
}

/// A built dumbbell: the two routers and the shared links.
#[derive(Debug)]
pub struct Dumbbell {
    /// Router on the senders' side.
    pub left_router: NodeId,
    /// Router on the receivers' side.
    pub right_router: NodeId,
    /// Bottleneck link left -> right (the congested direction in all the
    /// paper's scenarios).
    pub forward: LinkId,
    /// Bottleneck link right -> left (carries ACKs and reverse traffic).
    pub reverse: LinkId,
    cfg: DumbbellConfig,
}

/// A pair of end hosts, one on each side of the bottleneck.
#[derive(Debug, Clone, Copy)]
pub struct HostPair {
    /// Host on the senders' side.
    pub left: NodeId,
    /// Host on the receivers' side.
    pub right: NodeId,
}

impl Dumbbell {
    /// Build the routers and bottleneck links inside `sim`.
    pub fn build(sim: &mut Simulator, cfg: DumbbellConfig) -> Self {
        Self::build_with(sim, cfg, DumbbellOptions::new())
    }

    /// Build with optional scripted loss, ECN marking and fault plans
    /// attached to the bottleneck links — see [`DumbbellOptions`].
    pub fn build_with(sim: &mut Simulator, cfg: DumbbellConfig, mut opts: DumbbellOptions) -> Self {
        let left_router = sim.add_node();
        let right_router = sim.add_node();
        let fwd_link = opts.decorate_forward(Link::new(
            right_router,
            cfg.bottleneck_bps,
            cfg.bottleneck_delay,
            cfg.make_bottleneck_queue(),
        ));
        let forward = sim.add_link(left_router, fwd_link);
        let rev_link = opts.decorate_reverse(Link::new(
            left_router,
            cfg.bottleneck_bps,
            cfg.bottleneck_delay,
            cfg.make_bottleneck_queue(),
        ));
        let reverse = sim.add_link(right_router, rev_link);
        // Routers default-route across the bottleneck; host-specific
        // routes are added as host pairs are created.
        sim.set_default_route(left_router, forward);
        sim.set_default_route(right_router, reverse);
        Dumbbell {
            left_router,
            right_router,
            forward,
            reverse,
            cfg,
        }
    }

    /// Topology parameters this dumbbell was built with.
    pub fn config(&self) -> &DumbbellConfig {
        &self.cfg
    }

    /// Bandwidth-delay product of the bottleneck in packets.
    pub fn bdp_packets(&self) -> f64 {
        self.cfg.bdp_packets()
    }

    /// Round-trip propagation delay between a host pair.
    pub fn base_rtt(&self) -> SimDuration {
        self.cfg.base_rtt()
    }

    /// Add a host on each side, wired to its router with access links.
    ///
    /// Access buffers are sized generously (4x the bottleneck BDP) so the
    /// shared link is the only loss point unless a loss script says
    /// otherwise.
    pub fn add_host_pair(&self, sim: &mut Simulator) -> HostPair {
        self.add_host_pair_with_delay(sim, self.cfg.access_delay)
    }

    /// Add a host pair whose access links have a custom one-way delay,
    /// for heterogeneous-RTT scenarios (the flow's RTT becomes
    /// `2*(2*access_delay + bottleneck_delay)`).
    pub fn add_host_pair_with_delay(
        &self,
        sim: &mut Simulator,
        access_delay: SimDuration,
    ) -> HostPair {
        let access_buf = (4.0 * self.cfg.bdp_packets()).ceil().max(64.0) as usize;
        let left = sim.add_node();
        let right = sim.add_node();

        let l_up = sim.add_link(
            left,
            Link::new(
                self.left_router,
                self.cfg.access_bps,
                access_delay,
                Box::new(DropTail::new(access_buf)),
            ),
        );
        let l_down = sim.add_link(
            self.left_router,
            Link::new(
                left,
                self.cfg.access_bps,
                access_delay,
                Box::new(DropTail::new(access_buf)),
            ),
        );
        let r_up = sim.add_link(
            right,
            Link::new(
                self.right_router,
                self.cfg.access_bps,
                access_delay,
                Box::new(DropTail::new(access_buf)),
            ),
        );
        let r_down = sim.add_link(
            self.right_router,
            Link::new(
                right,
                self.cfg.access_bps,
                access_delay,
                Box::new(DropTail::new(access_buf)),
            ),
        );

        // Stub hosts default-route to their router.
        sim.set_default_route(left, l_up);
        sim.set_default_route(right, r_up);
        // Routers learn host-specific routes.
        sim.add_route(self.left_router, left, l_down);
        sim.add_route(self.right_router, right, r_down);

        HostPair { left, right }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AgentId, FlowId};
    use crate::packet::{Packet, PacketSpec};
    use crate::sim::{Agent, Ctx};
    use crate::time::SimTime;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn paper_config_has_50ms_rtt() {
        let cfg = DumbbellConfig::paper(10e6);
        assert_eq!(cfg.base_rtt(), SimDuration::from_millis(50));
        // 10 Mb/s * 50 ms / (8 * 1000 B) = 62.5 packets.
        assert!((cfg.bdp_packets() - 62.5).abs() < 1e-9);
    }

    struct Sender {
        flow: FlowId,
        dst_node: NodeId,
        dst_agent: AgentId,
    }
    impl Agent for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(PacketSpec::data(
                self.flow,
                0,
                1000,
                self.dst_node,
                self.dst_agent,
            ));
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
    }
    struct Echo {
        got: Arc<AtomicU64>,
    }
    impl Agent for Echo {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            self.got.fetch_add(1, Ordering::Relaxed);
            // Bounce a data packet back so the reverse path is exercised.
            ctx.send(PacketSpec::data(
                pkt.flow,
                pkt.seq,
                pkt.size,
                pkt.src_node,
                pkt.src_agent,
            ));
        }
    }

    #[test]
    fn packets_cross_the_dumbbell_both_ways() {
        let mut sim = Simulator::new(3);
        let db = Dumbbell::build(&mut sim, DumbbellConfig::paper(10e6));
        let pair = db.add_host_pair(&mut sim);
        let got = Arc::new(AtomicU64::new(0));
        let echo = sim.add_agent(pair.right, Box::new(Echo { got: got.clone() }));
        let flow = sim.new_flow();
        let back = Arc::new(AtomicU64::new(0));
        struct Counter {
            flow: FlowId,
            dst_node: NodeId,
            dst_agent: AgentId,
            back: Arc<AtomicU64>,
        }
        impl Agent for Counter {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(PacketSpec::data(
                    self.flow,
                    0,
                    1000,
                    self.dst_node,
                    self.dst_agent,
                ));
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
                self.back.fetch_add(1, Ordering::Relaxed);
            }
        }
        sim.add_agent(
            pair.left,
            Box::new(Counter {
                flow,
                dst_node: pair.right,
                dst_agent: echo,
                back: back.clone(),
            }),
        );
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(got.load(Ordering::Relaxed), 1);
        assert_eq!(back.load(Ordering::Relaxed), 1);
        let _ = Sender {
            flow,
            dst_node: pair.right,
            dst_agent: echo,
        };
    }

    #[test]
    fn multiple_host_pairs_share_the_bottleneck() {
        let mut sim = Simulator::new(3);
        let db = Dumbbell::build(&mut sim, DumbbellConfig::paper(10e6));
        let p1 = db.add_host_pair(&mut sim);
        let p2 = db.add_host_pair(&mut sim);
        assert_ne!(p1.left, p2.left);
        assert_ne!(p1.right, p2.right);

        let got = Arc::new(AtomicU64::new(0));
        let e1 = sim.add_agent(p1.right, Box::new(Echo { got: got.clone() }));
        let e2 = sim.add_agent(p2.right, Box::new(Echo { got: got.clone() }));
        let f1 = sim.new_flow();
        let f2 = sim.new_flow();
        sim.add_agent(
            p1.left,
            Box::new(Sender {
                flow: f1,
                dst_node: p1.right,
                dst_agent: e1,
            }),
        );
        sim.add_agent(
            p2.left,
            Box::new(Sender {
                flow: f2,
                dst_node: p2.right,
                dst_agent: e2,
            }),
        );
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(got.load(Ordering::Relaxed), 2);
        // Both flows crossed the same forward bottleneck.
        assert!(sim.stats().link(db.forward).unwrap().total_arrivals >= 2);
    }
}

/// A "parking lot": a chain of routers with a congested link between each
/// consecutive pair. Long flows traverse many congested hops; cross
/// traffic loads individual hops — the classic topology for studying
/// multi-hop (in)equity, which the paper's introduction explicitly
/// excludes from TCP's equitability guarantee.
///
/// ```text
///          hop 0        hop 1        hop 2
///   R0 ═══════════ R1 ═══════════ R2 ═══════════ R3
///   │              │              │              │
///  hosts          hosts          hosts          hosts
/// ```
#[derive(Debug)]
pub struct ParkingLot {
    routers: Vec<NodeId>,
    /// Congested links in the forward direction; `forward[i]` connects
    /// router `i` to router `i + 1`.
    pub forward: Vec<LinkId>,
    /// The mirror links; `reverse[i]` connects router `i + 1` to
    /// router `i`.
    pub reverse: Vec<LinkId>,
    cfg: DumbbellConfig,
}

impl ParkingLot {
    /// Build a chain with `hops` congested links (so `hops + 1` routers),
    /// each hop configured like the dumbbell bottleneck in `cfg`.
    pub fn build(sim: &mut Simulator, cfg: DumbbellConfig, hops: usize) -> Self {
        Self::build_with(sim, cfg, hops, DumbbellOptions::new())
    }

    /// Build with optional scripted loss, ECN marking and fault plans —
    /// the same [`DumbbellOptions`] the dumbbell takes — attached to the
    /// *first* hop's link pair (forward options on `forward[0]`, reverse
    /// options on `reverse[0]`); the remaining hops stay plain.
    pub fn build_with(
        sim: &mut Simulator,
        cfg: DumbbellConfig,
        hops: usize,
        mut opts: DumbbellOptions,
    ) -> Self {
        assert!(hops >= 1, "a parking lot needs at least one hop");
        let routers: Vec<NodeId> = (0..=hops).map(|_| sim.add_node()).collect();
        let mut forward = Vec::with_capacity(hops);
        let mut reverse = Vec::with_capacity(hops);
        for i in 0..hops {
            let mut fwd_link = Link::new(
                routers[i + 1],
                cfg.bottleneck_bps,
                cfg.bottleneck_delay,
                cfg.make_bottleneck_queue(),
            );
            let mut rev_link = Link::new(
                routers[i],
                cfg.bottleneck_bps,
                cfg.bottleneck_delay,
                cfg.make_bottleneck_queue(),
            );
            if i == 0 {
                fwd_link = opts.decorate_forward(fwd_link);
                rev_link = opts.decorate_reverse(rev_link);
            }
            let f = sim.add_link(routers[i], fwd_link);
            let r = sim.add_link(routers[i + 1], rev_link);
            forward.push(f);
            reverse.push(r);
        }
        ParkingLot {
            routers,
            forward,
            reverse,
            cfg,
        }
    }

    /// Number of congested hops.
    pub fn hops(&self) -> usize {
        self.forward.len()
    }

    /// The router at position `ix` in the chain.
    pub fn router(&self, ix: usize) -> NodeId {
        self.routers[ix]
    }

    /// Topology parameters.
    pub fn config(&self) -> &DumbbellConfig {
        &self.cfg
    }

    /// Add a host pair whose traffic enters the chain at router `from`
    /// and leaves at router `to` (`from < to`), traversing hops
    /// `from..to`. Returns the pair; per-destination routes are installed
    /// along the chain in both directions.
    pub fn add_host_pair(&self, sim: &mut Simulator, from: usize, to: usize) -> HostPair {
        assert!(
            from < to && to < self.routers.len(),
            "need from < to <= hops (got {from}..{to} with {} hops)",
            self.hops()
        );
        let access_buf = (4.0 * self.cfg.bdp_packets()).ceil().max(64.0) as usize;
        let left = sim.add_node();
        let right = sim.add_node();
        let mk_access = |dst: NodeId| {
            Link::new(
                dst,
                self.cfg.access_bps,
                self.cfg.access_delay,
                Box::new(DropTail::new(access_buf)),
            )
        };
        let l_up = sim.add_link(left, mk_access(self.routers[from]));
        let l_down = sim.add_link(self.routers[from], mk_access(left));
        let r_up = sim.add_link(right, mk_access(self.routers[to]));
        let r_down = sim.add_link(self.routers[to], mk_access(right));
        sim.set_default_route(left, l_up);
        sim.set_default_route(right, r_up);
        // Forward path: routers from..to-1 forward toward the right host;
        // router `to` hands it down the access link.
        for i in from..to {
            sim.add_route(self.routers[i], right, self.forward[i]);
        }
        sim.add_route(self.routers[to], right, r_down);
        // Reverse path symmetrically.
        for i in from..to {
            sim.add_route(self.routers[i + 1], left, self.reverse[i]);
        }
        sim.add_route(self.routers[from], left, l_down);
        HostPair { left, right }
    }
}

// ---------------------------------------------------------------------
// Spec-driven construction
// ---------------------------------------------------------------------

/// Which topology family a [`TopologySpec`] builds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyKind {
    /// Single shared bottleneck ([`Dumbbell`]).
    Dumbbell,
    /// Chain of `hops` congested links ([`ParkingLot`]).
    ParkingLot {
        /// Number of congested hops (>= 1).
        hops: usize,
    },
}

/// A declarative topology description: one struct, one build path, for
/// both the Rust builders and the scenario DSL. Building a spec
/// delegates to exactly the same [`Dumbbell::build_with`] /
/// [`ParkingLot::build_with`] calls hand-written experiments make, so a
/// spec-built simulation is event-for-event identical to its hard-coded
/// twin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologySpec {
    /// Topology family (and hop count, for parking lots).
    pub kind: TopologyKind,
    /// Link/queue parameters, shared by every congested hop.
    pub config: DumbbellConfig,
}

impl TopologySpec {
    /// A dumbbell with the given link/queue parameters.
    pub fn dumbbell(config: DumbbellConfig) -> Self {
        TopologySpec {
            kind: TopologyKind::Dumbbell,
            config,
        }
    }

    /// A parking lot with `hops` congested links.
    pub fn parking_lot(config: DumbbellConfig, hops: usize) -> Self {
        TopologySpec {
            kind: TopologyKind::ParkingLot { hops },
            config,
        }
    }

    /// Build the routers and congested links inside `sim`.
    pub fn build(&self, sim: &mut Simulator) -> BuiltTopology {
        self.build_with(sim, DumbbellOptions::new())
    }

    /// Build with [`DumbbellOptions`] attachments (scripted loss, ECN
    /// marking, fault plans). On a parking lot they attach to the first
    /// hop, exactly as [`ParkingLot::build_with`] does.
    pub fn build_with(&self, sim: &mut Simulator, opts: DumbbellOptions) -> BuiltTopology {
        match self.kind {
            TopologyKind::Dumbbell => {
                BuiltTopology::Dumbbell(Dumbbell::build_with(sim, self.config, opts))
            }
            TopologyKind::ParkingLot { hops } => {
                BuiltTopology::ParkingLot(ParkingLot::build_with(sim, self.config, hops, opts))
            }
        }
    }
}

/// The result of building a [`TopologySpec`]: whichever family it
/// named, behind one host-attachment interface.
#[derive(Debug)]
pub enum BuiltTopology {
    /// A built dumbbell.
    Dumbbell(Dumbbell),
    /// A built parking lot.
    ParkingLot(ParkingLot),
}

impl BuiltTopology {
    /// Link/queue parameters the topology was built with.
    pub fn config(&self) -> &DumbbellConfig {
        match self {
            BuiltTopology::Dumbbell(db) => db.config(),
            BuiltTopology::ParkingLot(lot) => lot.config(),
        }
    }

    /// Number of congested hops (1 for a dumbbell).
    pub fn hops(&self) -> usize {
        match self {
            BuiltTopology::Dumbbell(_) => 1,
            BuiltTopology::ParkingLot(lot) => lot.hops(),
        }
    }

    /// The first congested link in the forward direction — the
    /// dumbbell bottleneck, or a parking lot's hop 0 (where
    /// [`DumbbellOptions`] attachments land).
    pub fn forward_bottleneck(&self) -> LinkId {
        match self {
            BuiltTopology::Dumbbell(db) => db.forward,
            BuiltTopology::ParkingLot(lot) => lot.forward[0],
        }
    }

    /// The congested forward links, hop by hop.
    pub fn forward_links(&self) -> Vec<LinkId> {
        match self {
            BuiltTopology::Dumbbell(db) => vec![db.forward],
            BuiltTopology::ParkingLot(lot) => lot.forward.clone(),
        }
    }

    /// The congested reverse links, hop by hop (mirrors of
    /// [`BuiltTopology::forward_links`]).
    pub fn reverse_links(&self) -> Vec<LinkId> {
        match self {
            BuiltTopology::Dumbbell(db) => vec![db.reverse],
            BuiltTopology::ParkingLot(lot) => lot.reverse.clone(),
        }
    }

    /// The underlying dumbbell, for attachments that are
    /// dumbbell-specific (reverse bulk traffic, flash crowds).
    pub fn as_dumbbell(&self) -> Option<&Dumbbell> {
        match self {
            BuiltTopology::Dumbbell(db) => Some(db),
            BuiltTopology::ParkingLot(_) => None,
        }
    }

    /// Add a host pair spanning the whole topology: across the
    /// dumbbell, or from the first to the last parking-lot router.
    pub fn add_host_pair(&self, sim: &mut Simulator) -> HostPair {
        match self {
            BuiltTopology::Dumbbell(db) => db.add_host_pair(sim),
            BuiltTopology::ParkingLot(lot) => lot.add_host_pair(sim, 0, lot.hops()),
        }
    }

    /// Add a host pair spanning routers `from..to`. On a dumbbell the
    /// only valid span is `0..1` (the whole path).
    pub fn add_host_pair_span(&self, sim: &mut Simulator, from: usize, to: usize) -> HostPair {
        match self {
            BuiltTopology::Dumbbell(db) => {
                assert!(
                    from == 0 && to == 1,
                    "a dumbbell only has the span 0..1 (got {from}..{to})"
                );
                db.add_host_pair(sim)
            }
            BuiltTopology::ParkingLot(lot) => lot.add_host_pair(sim, from, to),
        }
    }

    /// Add a host pair with a custom one-way access delay
    /// (heterogeneous-RTT scenarios; dumbbell only).
    pub fn add_host_pair_with_delay(
        &self,
        sim: &mut Simulator,
        access_delay: SimDuration,
    ) -> HostPair {
        match self {
            BuiltTopology::Dumbbell(db) => db.add_host_pair_with_delay(sim, access_delay),
            BuiltTopology::ParkingLot(_) => {
                panic!("custom access delays are only supported on dumbbells")
            }
        }
    }
}

#[cfg(test)]
mod spec_tests {
    use super::*;

    #[test]
    fn paper_constants_match_the_paper_config() {
        let cfg = DumbbellConfig::paper(10e6);
        assert_eq!(cfg.pkt_size, PAPER_PKT_SIZE);
        assert_eq!(cfg.base_rtt(), PAPER_RTT);
    }

    #[test]
    fn spec_build_matches_the_hand_written_builders() {
        // Same seed, same construction order: identical ids and stats.
        let mut a = Simulator::new(9);
        let db = Dumbbell::build(&mut a, DumbbellConfig::paper(10e6));
        let pa = db.add_host_pair(&mut a);

        let mut b = Simulator::new(9);
        let spec = TopologySpec::dumbbell(DumbbellConfig::paper(10e6));
        let built = spec.build(&mut b);
        let pb = built.add_host_pair(&mut b);
        assert_eq!(pa.left, pb.left);
        assert_eq!(pa.right, pb.right);
        assert_eq!(built.forward_bottleneck(), db.forward);
        assert_eq!(built.hops(), 1);

        let mut c = Simulator::new(9);
        let lot = ParkingLot::build(&mut c, DumbbellConfig::paper(10e6), 3);
        let pc = lot.add_host_pair(&mut c, 0, 3);

        let mut d = Simulator::new(9);
        let built = TopologySpec::parking_lot(DumbbellConfig::paper(10e6), 3).build(&mut d);
        let pd = built.add_host_pair(&mut d);
        assert_eq!(pc.left, pd.left);
        assert_eq!(pc.right, pd.right);
        assert_eq!(built.forward_links(), lot.forward);
        assert!(built.as_dumbbell().is_none());
    }
}

#[cfg(test)]
mod parking_lot_tests {
    use super::*;
    use crate::ids::{AgentId, FlowId};
    use crate::packet::{Packet, PacketSpec};
    use crate::sim::{Agent, Ctx};
    use crate::time::SimTime;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct Probe {
        flow: FlowId,
        dst_node: NodeId,
        dst_agent: AgentId,
        echoed: Arc<AtomicU64>,
    }
    impl Agent for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(PacketSpec::data(
                self.flow,
                0,
                1000,
                self.dst_node,
                self.dst_agent,
            ));
        }
        fn on_packet(&mut self, _p: Packet, _c: &mut Ctx<'_>) {
            self.echoed.fetch_add(1, Ordering::Relaxed);
        }
    }
    struct Echo;
    impl Agent for Echo {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            ctx.send(PacketSpec::data(
                pkt.flow,
                pkt.seq,
                100,
                pkt.src_node,
                pkt.src_agent,
            ));
        }
    }

    #[test]
    fn long_and_cross_paths_route_end_to_end() {
        let mut sim = Simulator::new(0);
        let lot = ParkingLot::build(&mut sim, DumbbellConfig::paper(10e6), 3);
        // A long pair over all three hops and a cross pair on hop 1.
        let long = lot.add_host_pair(&mut sim, 0, 3);
        let cross = lot.add_host_pair(&mut sim, 1, 2);

        let echoed = Arc::new(AtomicU64::new(0));
        for pair in [long, cross] {
            let e = sim.add_agent(pair.right, Box::new(Echo));
            let flow = sim.new_flow();
            sim.add_agent(
                pair.left,
                Box::new(Probe {
                    flow,
                    dst_node: pair.right,
                    dst_agent: e,
                    echoed: echoed.clone(),
                }),
            );
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            echoed.load(Ordering::Relaxed),
            2,
            "both round trips completed"
        );
        // The long flow's packet crossed every hop; the cross flow's only
        // hop 1.
        assert_eq!(sim.stats().link(lot.forward[0]).unwrap().total_arrivals, 1);
        assert_eq!(sim.stats().link(lot.forward[1]).unwrap().total_arrivals, 2);
        assert_eq!(sim.stats().link(lot.forward[2]).unwrap().total_arrivals, 1);
    }

    #[test]
    #[should_panic(expected = "from < to")]
    fn invalid_span_is_rejected() {
        let mut sim = Simulator::new(0);
        let lot = ParkingLot::build(&mut sim, DumbbellConfig::paper(10e6), 2);
        lot.add_host_pair(&mut sim, 2, 1);
    }
}
