//! Nodes and static routing.
//!
//! A node is a host or router with a per-destination routing table and an
//! optional default route. Routing is static: the experiments use fixed
//! dumbbell topologies, so tables are filled once at construction time by
//! [`crate::topology`] helpers (or by hand for custom topologies).

use std::collections::HashMap;

use crate::ids::{LinkId, NodeId};

/// A host or router.
#[derive(Debug, Default)]
pub struct Node {
    routes: HashMap<NodeId, LinkId>,
    default_route: Option<LinkId>,
}

impl Node {
    /// An empty node with no routes.
    pub fn new() -> Self {
        Node::default()
    }

    /// Install a route: packets for `dst` leave on `link`.
    pub fn add_route(&mut self, dst: NodeId, link: LinkId) {
        self.routes.insert(dst, link);
    }

    /// Install the default route used when no per-destination entry
    /// matches (typical for stub hosts with a single uplink).
    pub fn set_default_route(&mut self, link: LinkId) {
        self.default_route = Some(link);
    }

    /// Outgoing link for `dst`, if the node knows one.
    pub fn route(&self, dst: NodeId) -> Option<LinkId> {
        self.routes.get(&dst).copied().or(self.default_route)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specific_route_wins_over_default() {
        let mut n = Node::new();
        let dst = NodeId::from_index(7);
        let specific = LinkId::from_index(1);
        let fallback = LinkId::from_index(2);
        n.set_default_route(fallback);
        n.add_route(dst, specific);
        assert_eq!(n.route(dst), Some(specific));
        assert_eq!(n.route(NodeId::from_index(8)), Some(fallback));
    }

    #[test]
    fn no_route_when_empty() {
        let n = Node::new();
        assert_eq!(n.route(NodeId::from_index(0)), None);
    }
}
