//! Nodes and static routing.
//!
//! A node is a host or router with a per-destination routing table and an
//! optional default route. Routing is static: the experiments use fixed
//! dumbbell topologies, so tables are filled once at construction time by
//! [`crate::topology`] helpers (or by hand for custom topologies).

use crate::ids::{LinkId, NodeId};

/// A host or router.
///
/// The routing table is a flat sorted vector rather than a `HashMap`:
/// [`Node::route`] runs for every packet at every hop, tables are tiny
/// (a handful of entries on the paper's dumbbells) and built once at
/// topology-construction time, so a cache-resident binary search beats
/// hashing every destination id through SipHash on the hot path.
#[derive(Debug, Default, Clone)]
pub struct Node {
    /// `(dst, out-link)` pairs, sorted by `dst` (unique).
    routes: Vec<(NodeId, LinkId)>,
    default_route: Option<LinkId>,
}

impl Node {
    /// An empty node with no routes.
    pub fn new() -> Self {
        Node::default()
    }

    /// Install a route: packets for `dst` leave on `link`. Re-adding a
    /// destination replaces its entry.
    pub fn add_route(&mut self, dst: NodeId, link: LinkId) {
        match self.routes.binary_search_by_key(&dst, |&(d, _)| d) {
            Ok(i) => self.routes[i].1 = link,
            Err(i) => self.routes.insert(i, (dst, link)),
        }
    }

    /// Install the default route used when no per-destination entry
    /// matches (typical for stub hosts with a single uplink).
    pub fn set_default_route(&mut self, link: LinkId) {
        self.default_route = Some(link);
    }

    /// Outgoing link for `dst`, if the node knows one.
    #[inline]
    pub fn route(&self, dst: NodeId) -> Option<LinkId> {
        match self.routes.binary_search_by_key(&dst, |&(d, _)| d) {
            Ok(i) => Some(self.routes[i].1),
            Err(_) => self.default_route,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specific_route_wins_over_default() {
        let mut n = Node::new();
        let dst = NodeId::from_index(7);
        let specific = LinkId::from_index(1);
        let fallback = LinkId::from_index(2);
        n.set_default_route(fallback);
        n.add_route(dst, specific);
        assert_eq!(n.route(dst), Some(specific));
        assert_eq!(n.route(NodeId::from_index(8)), Some(fallback));
    }

    #[test]
    fn no_route_when_empty() {
        let n = Node::new();
        assert_eq!(n.route(NodeId::from_index(0)), None);
    }
}
