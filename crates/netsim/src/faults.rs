//! Deterministic per-link fault injection.
//!
//! The paper's figures perturb exactly one thing: the loss process on the
//! bottleneck. Real paths misbehave in richer ways — packets are
//! reordered, duplicated, jittered, and whole links flap — and SlowCC
//! algorithms must degrade gracefully under all of them. A [`FaultPlan`]
//! scripts those perturbations per link:
//!
//! * **Reordering** ([`Reorder`]) — every `every_nth`-th packet offered to
//!   the link is *held* for a fixed duration and re-offered through the
//!   event queue, so later packets overtake it. At most `max_held`
//!   packets are in the hold bay at once, which bounds the displacement.
//! * **Duplication** ([`Duplicate`]) — each offered packet is cloned with
//!   probability `p`. The clone is a *new* packet (fresh uid, freshly
//!   injected into the packet ledger) so the audit books stay balanced.
//! * **Delay jitter** ([`Jitter`]) — each serialized packet's propagation
//!   delay is stretched by a uniform draw in `[0, max]`, which perturbs
//!   RTT estimators and can itself reorder deliveries.
//! * **Link flapping** ([`FlapWindow`]) — scripted `down_at..up_at`
//!   windows during which the link blackholes every packet offered to it
//!   (accounted as ordinary link drops, so conservation holds).
//!
//! # Determinism
//!
//! Every random decision draws from the plan's own RNG, seeded from
//! [`FaultPlan::seed`] and independent of the simulation RNG. Event
//! processing order is identical across scheduler backends, so the draw
//! sequence — and therefore the entire faulted run — replays
//! bit-identically from `(plan, seed)` on either backend.
//!
//! # Audit interplay
//!
//! A held packet has not yet "arrived" at the link (arrival accounting
//! runs at admission, after release), so the per-link conservation law
//! `arrivals == departures + drops + held-in-buffer` is undisturbed.
//! Duplicates are injected into the packet ledger like any send, and flap
//! drops are recorded through the same stats/audit drop hooks as scripted
//! loss. `SLOWCC_AUDIT=strict` runs clean over any plan.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::{SimDuration, SimTime};

/// Hold-and-release reordering: every `every_nth`-th packet is delayed by
/// `hold` before it is admitted to the link, letting up to `hold`'s worth
/// of later traffic overtake it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reorder {
    /// Hold one of every `every_nth` offered packets (0 disables).
    pub every_nth: u64,
    /// How long a held packet waits before being re-offered.
    pub hold: SimDuration,
    /// Maximum packets held simultaneously; offers beyond the cap pass
    /// through unheld, which bounds both memory and displacement.
    pub max_held: usize,
}

/// Independent per-packet duplication with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Duplicate {
    /// Duplication probability in `[0, 1]`.
    pub p: f64,
}

/// Uniform extra propagation delay in `[0, max]` per serialized packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jitter {
    /// Largest extra delay a packet can be assigned.
    pub max: SimDuration,
}

/// One scheduled outage: the link drops everything offered to it in
/// `[down_at, up_at)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapWindow {
    /// When the link goes dark.
    pub down_at: SimTime,
    /// When it comes back.
    pub up_at: SimTime,
}

/// A complete per-link fault script. Attach with
/// [`crate::link::Link::with_faults`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of the plan's private RNG (duplication and jitter draws).
    pub seed: u64,
    /// Optional reordering fault.
    pub reorder: Option<Reorder>,
    /// Optional duplication fault.
    pub duplicate: Option<Duplicate>,
    /// Optional delay-jitter fault.
    pub jitter: Option<Jitter>,
    /// Outage windows, in ascending, non-overlapping time order.
    pub flaps: Vec<FlapWindow>,
}

impl FaultPlan {
    /// An empty plan with its RNG seeded from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Hold one of every `every_nth` packets for `hold`, at most
    /// `max_held` at a time.
    pub fn with_reorder(mut self, every_nth: u64, hold: SimDuration, max_held: usize) -> Self {
        self.reorder = Some(Reorder {
            every_nth,
            hold,
            max_held,
        });
        self
    }

    /// Duplicate each packet with probability `p`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.duplicate = Some(Duplicate { p });
        self
    }

    /// Stretch each packet's propagation delay by up to `max`.
    pub fn with_jitter(mut self, max: SimDuration) -> Self {
        self.jitter = Some(Jitter { max });
        self
    }

    /// Add an outage window. Windows must be appended in ascending order
    /// and must not overlap; [`FaultState::new`] asserts this.
    pub fn with_flap(mut self, down_at: SimTime, up_at: SimTime) -> Self {
        assert!(down_at < up_at, "flap window must have down_at < up_at");
        self.flaps.push(FlapWindow { down_at, up_at });
        self
    }

    /// One-line human summary ("reorder(1/20,30ms) dup(0.5%) ...") used
    /// by experiment reports.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if let Some(r) = &self.reorder {
            parts.push(format!(
                "reorder(1/{},{}ms,cap{})",
                r.every_nth,
                r.hold.as_nanos() / 1_000_000,
                r.max_held
            ));
        }
        if let Some(d) = &self.duplicate {
            parts.push(format!("dup({:.2}%)", d.p * 100.0));
        }
        if let Some(j) = &self.jitter {
            parts.push(format!("jitter({}ms)", j.max.as_nanos() / 1_000_000));
        }
        for f in &self.flaps {
            parts.push(format!(
                "flap({:.1}s-{:.1}s)",
                f.down_at.as_secs_f64(),
                f.up_at.as_secs_f64()
            ));
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// Runtime state of one link's fault plan: the seeded RNG, the reorder
/// counters, and a cursor over the flap timeline. Owned by the
/// [`crate::link::Link`], driven by the simulator's admission and
/// serialization paths.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: SmallRng,
    /// Packets seen by the pre-admission stage (reorder cadence).
    seen: u64,
    /// Packets currently in the hold bay.
    held: usize,
    /// Index of the first flap window that has not fully passed.
    flap_ix: usize,
}

impl FaultState {
    /// Build the runtime state, validating the flap timeline.
    pub fn new(plan: FaultPlan) -> Self {
        for w in plan.flaps.windows(2) {
            assert!(
                w[0].up_at <= w[1].down_at,
                "flap windows must be ascending and non-overlapping"
            );
        }
        let rng = SmallRng::seed_from_u64(plan.seed);
        FaultState {
            plan,
            rng,
            seen: 0,
            held: 0,
            flap_ix: 0,
        }
    }

    /// The plan this state runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Duplication decision for the packet currently being offered.
    /// Draws exactly one random number when duplication is configured,
    /// none otherwise, so the draw sequence is a pure function of the
    /// offer sequence.
    pub(crate) fn should_duplicate(&mut self) -> bool {
        match self.plan.duplicate {
            Some(d) => self.rng.gen::<f64>() < d.p,
            None => false,
        }
    }

    /// Hold decision for the packet currently being offered: `Some(hold)`
    /// sends it to the hold bay.
    pub(crate) fn should_hold(&mut self) -> Option<SimDuration> {
        let r = self.plan.reorder?;
        if r.every_nth == 0 {
            return None;
        }
        self.seen += 1;
        if self.seen.is_multiple_of(r.every_nth) && self.held < r.max_held {
            self.held += 1;
            Some(r.hold)
        } else {
            None
        }
    }

    /// A held packet left the hold bay.
    pub(crate) fn on_release(&mut self) {
        debug_assert!(self.held > 0, "release without a held packet");
        self.held = self.held.saturating_sub(1);
    }

    /// Whether the link is inside an outage window at `now`. Calls must
    /// come with non-decreasing `now` (event order), which lets the
    /// timeline cursor advance monotonically.
    pub(crate) fn is_down(&mut self, now: SimTime) -> bool {
        while self
            .plan
            .flaps
            .get(self.flap_ix)
            .is_some_and(|w| now >= w.up_at)
        {
            self.flap_ix += 1;
        }
        self.plan
            .flaps
            .get(self.flap_ix)
            .is_some_and(|w| now >= w.down_at)
    }

    /// Extra propagation delay for the packet that just finished
    /// serializing. Draws exactly one random number when jitter is
    /// configured, none otherwise.
    pub(crate) fn jitter(&mut self) -> SimDuration {
        match self.plan.jitter {
            Some(j) if !j.max.is_zero() => {
                let span = j.max.as_nanos();
                SimDuration::from_nanos(self.rng.gen_range_u64(0, span + 1))
            }
            _ => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_cadence_and_cap() {
        let plan = FaultPlan::seeded(1).with_reorder(3, SimDuration::from_millis(10), 1);
        let mut fs = FaultState::new(plan);
        let holds: Vec<bool> = (0..9).map(|_| fs.should_hold().is_some()).collect();
        // Every 3rd offer is held, but the cap of 1 suppresses the 6th
        // and 9th while the 3rd is still outstanding.
        assert_eq!(
            holds,
            vec![false, false, true, false, false, false, false, false, false]
        );
        fs.on_release();
        let more: Vec<bool> = (0..3).map(|_| fs.should_hold().is_some()).collect();
        assert_eq!(more, vec![false, false, true]);
    }

    #[test]
    fn flap_cursor_tracks_monotone_time() {
        let plan = FaultPlan::seeded(0)
            .with_flap(SimTime::from_secs(1), SimTime::from_secs(2))
            .with_flap(SimTime::from_secs(5), SimTime::from_secs(6));
        let mut fs = FaultState::new(plan);
        assert!(!fs.is_down(SimTime::from_millis(500)));
        assert!(fs.is_down(SimTime::from_millis(1000)));
        assert!(fs.is_down(SimTime::from_millis(1999)));
        assert!(!fs.is_down(SimTime::from_millis(2000)));
        assert!(!fs.is_down(SimTime::from_millis(4999)));
        assert!(fs.is_down(SimTime::from_millis(5500)));
        assert!(!fs.is_down(SimTime::from_secs(6)));
    }

    #[test]
    #[should_panic(expected = "non-overlapping")]
    fn overlapping_flaps_are_rejected() {
        let plan = FaultPlan::seeded(0)
            .with_flap(SimTime::from_secs(1), SimTime::from_secs(3))
            .with_flap(SimTime::from_secs(2), SimTime::from_secs(4));
        let _ = FaultState::new(plan);
    }

    #[test]
    fn duplication_hits_its_probability_and_replays() {
        let run = |seed: u64| -> Vec<bool> {
            let mut fs = FaultState::new(FaultPlan::seeded(seed).with_duplication(0.2));
            (0..10_000).map(|_| fs.should_duplicate()).collect()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed must replay identically");
        assert_ne!(a, run(8));
        let rate = a.iter().filter(|&&d| d).count() as f64 / a.len() as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let max = SimDuration::from_millis(5);
        let mut fs = FaultState::new(FaultPlan::seeded(3).with_jitter(max));
        for _ in 0..1000 {
            assert!(fs.jitter() <= max);
        }
        // No jitter configured: no draws, always zero.
        let mut none = FaultState::new(FaultPlan::seeded(3));
        assert_eq!(none.jitter(), SimDuration::ZERO);
    }

    #[test]
    fn summary_mentions_every_configured_fault() {
        let plan = FaultPlan::seeded(0)
            .with_reorder(20, SimDuration::from_millis(30), 8)
            .with_duplication(0.005)
            .with_jitter(SimDuration::from_millis(2))
            .with_flap(SimTime::from_secs(4), SimTime::from_secs(5));
        let s = plan.summary();
        for needle in ["reorder(1/20", "dup(0.50%)", "jitter(2ms)", "flap(4.0s-5.0s)"] {
            assert!(s.contains(needle), "`{s}` missing `{needle}`");
        }
        assert_eq!(FaultPlan::default().summary(), "none");
    }
}
