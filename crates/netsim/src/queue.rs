//! Queue disciplines for link buffers.
//!
//! Two disciplines are provided, matching the paper's simulations:
//!
//! * [`DropTail`] — a plain FIFO with a hard packet limit.
//! * [`Red`] — Random Early Detection (Floyd & Jacobson 1993), with the
//!   count-corrected drop probability, the idle-time correction to the
//!   average queue estimate, and an optional "gentle" mode, mirroring the
//!   ns-2 implementation the paper used.
//!
//! Queue occupancy is measured in packets (the ns-2 default for these
//! experiments).
//!
//! Buffered packets live in the simulator's [`PacketPool`]; disciplines
//! store and hand back [`PacketId`]s, so queueing a packet moves four
//! bytes instead of the whole struct. On [`EnqueueResult::Dropped`] the
//! *caller* ends the packet's life in the pool (after tracing it);
//! disciplines never free ids.

use std::collections::VecDeque;

use rand::Rng;

use crate::pool::{PacketId, PacketPool};
use crate::time::{SimDuration, SimTime};

/// Outcome of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    /// The packet was accepted and buffered.
    Enqueued,
    /// The packet was rejected by the discipline (early drop or
    /// overflow); the caller accounts the drop and frees the pooled
    /// packet.
    Dropped,
    /// The packet was accepted and ECN-marked instead of being
    /// early-dropped (RED with ECN enabled, RFC 2481).
    Marked,
}

/// A queue discipline: decides whether arriving packets are buffered or
/// dropped, and hands back buffered packets in service order.
pub trait QueueDiscipline: Send {
    /// Offer the pooled packet `pkt` to the queue at time `now`. On
    /// [`EnqueueResult::Dropped`] the discipline no longer references
    /// `pkt`; the caller frees it.
    fn enqueue(
        &mut self,
        pkt: PacketId,
        pool: &mut PacketPool,
        now: SimTime,
        rng: &mut dyn rand::RngCore,
    ) -> EnqueueResult;

    /// Remove the next packet to transmit, if any.
    fn dequeue(&mut self, now: SimTime) -> Option<PacketId>;

    /// Current occupancy in packets.
    fn len(&self) -> usize;

    /// True when no packets are buffered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A FIFO queue with a hard capacity in packets.
#[derive(Debug)]
pub struct DropTail {
    buf: VecDeque<PacketId>,
    capacity: usize,
}

impl DropTail {
    /// A FIFO holding at most `capacity` packets. A capacity of zero drops
    /// everything.
    pub fn new(capacity: usize) -> Self {
        DropTail {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
        }
    }
}

impl QueueDiscipline for DropTail {
    #[inline]
    fn enqueue(
        &mut self,
        pkt: PacketId,
        _pool: &mut PacketPool,
        _now: SimTime,
        _rng: &mut dyn rand::RngCore,
    ) -> EnqueueResult {
        if self.buf.len() >= self.capacity {
            EnqueueResult::Dropped
        } else {
            self.buf.push_back(pkt);
            EnqueueResult::Enqueued
        }
    }

    #[inline]
    fn dequeue(&mut self, _now: SimTime) -> Option<PacketId> {
        self.buf.pop_front()
    }

    #[inline]
    fn len(&self) -> usize {
        self.buf.len()
    }
}

/// Configuration for a [`Red`] queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedConfig {
    /// Hard buffer limit in packets; arrivals beyond this are always
    /// dropped regardless of the average queue.
    pub capacity: usize,
    /// Lower threshold on the average queue size, in packets.
    pub min_thresh: f64,
    /// Upper threshold on the average queue size, in packets.
    pub max_thresh: f64,
    /// Maximum early-drop probability reached at `max_thresh`.
    pub max_p: f64,
    /// Weight of the exponentially weighted moving average of the queue.
    pub weight: f64,
    /// Mean packet transmission time, used to age the average across idle
    /// periods (ns-2 estimates this from the link rate; we take it
    /// explicitly).
    pub mean_pkt_time: SimDuration,
    /// Gentle RED: between `max_thresh` and `2*max_thresh` the drop
    /// probability rises linearly from `max_p` to 1 instead of jumping
    /// to 1.
    pub gentle: bool,
    /// ECN: mark ECN-capable packets instead of early-dropping them
    /// (hard-limit overflow still drops).
    pub ecn: bool,
}

impl RedConfig {
    /// The paper's configuration in terms of the bandwidth-delay product
    /// measured in packets: queue capacity 2.5x BDP, `min_thresh` 0.25x,
    /// `max_thresh` 1.25x (Section 3), with ns-2 default `weight` and
    /// `max_p`.
    pub fn paper_defaults(bdp_packets: f64, mean_pkt_time: SimDuration) -> Self {
        RedConfig {
            capacity: (2.5 * bdp_packets).round().max(4.0) as usize,
            min_thresh: (0.25 * bdp_packets).max(1.0),
            max_thresh: (1.25 * bdp_packets).max(2.0),
            max_p: 0.1,
            weight: 0.002,
            mean_pkt_time,
            gentle: false,
            ecn: false,
        }
    }
}

/// Per-arrival constants derived from [`RedConfig`], hoisted out of the
/// enqueue hot path at construction time. Every value is the *identical*
/// `f64` the inline expression produced, so precomputing preserves
/// bit-exact drop decisions.
#[derive(Debug, Clone, Copy)]
struct RedPrecomputed {
    /// `1.0 - weight` (used twice per arrival by the EWMA update).
    one_minus_weight: f64,
    /// `max_thresh - min_thresh`.
    thresh_range: f64,
    /// `2.0 * max_thresh` (gentle-mode upper bound; exact doubling).
    two_max_thresh: f64,
    /// `1.0 - max_p` (gentle-mode slope numerator).
    one_minus_max_p: f64,
}

impl RedPrecomputed {
    fn from(cfg: &RedConfig) -> Self {
        RedPrecomputed {
            one_minus_weight: 1.0 - cfg.weight,
            thresh_range: cfg.max_thresh - cfg.min_thresh,
            two_max_thresh: 2.0 * cfg.max_thresh,
            one_minus_max_p: 1.0 - cfg.max_p,
        }
    }
}

/// Random Early Detection queue.
#[derive(Debug)]
pub struct Red {
    cfg: RedConfig,
    pre: RedPrecomputed,
    buf: VecDeque<PacketId>,
    /// EWMA of the instantaneous queue length, in packets.
    avg: f64,
    /// Packets enqueued since the last early drop (or since the average
    /// last fell below `min_thresh`); -1 encodes "fresh" per RFC 2309
    /// pseudo-code, we use an Option instead.
    count: Option<u64>,
    /// When the queue went idle, if it is currently empty.
    idle_since: Option<SimTime>,
}

impl Red {
    /// A RED queue with the given configuration. Panics on inverted
    /// thresholds or out-of-range probabilities/weights.
    pub fn new(cfg: RedConfig) -> Self {
        assert!(
            cfg.min_thresh < cfg.max_thresh,
            "RED requires min_thresh < max_thresh (got {} >= {})",
            cfg.min_thresh,
            cfg.max_thresh
        );
        assert!(
            cfg.max_p > 0.0 && cfg.max_p <= 1.0,
            "RED max_p must be in (0, 1]"
        );
        assert!(
            cfg.weight > 0.0 && cfg.weight <= 1.0,
            "RED weight must be in (0, 1]"
        );
        Red {
            pre: RedPrecomputed::from(&cfg),
            cfg,
            buf: VecDeque::new(),
            avg: 0.0,
            count: None,
            idle_since: Some(SimTime::ZERO),
        }
    }

    /// Current EWMA of the queue length, exposed for instrumentation.
    pub fn average(&self) -> f64 {
        self.avg
    }

    /// Update the average for an arrival at `now`, accounting for idle time.
    fn update_average(&mut self, now: SimTime) {
        if let Some(idle_start) = self.idle_since.take() {
            // While the queue was empty the link kept "transmitting"
            // hypothetical small packets: age the average as if m packets
            // of the mean size had departed.
            let idle = now.saturating_since(idle_start);
            if !self.cfg.mean_pkt_time.is_zero() {
                let m = idle / self.cfg.mean_pkt_time;
                self.avg *= self.pre.one_minus_weight.powf(m);
            }
        }
        self.avg = self.pre.one_minus_weight * self.avg + self.cfg.weight * self.buf.len() as f64;
    }

    /// Early-drop probability for the current average, before count
    /// correction. `None` means "no early drop"; `Some(1.0)` forces a drop.
    fn base_drop_prob(&self) -> Option<f64> {
        if self.avg < self.cfg.min_thresh {
            None
        } else if self.avg < self.cfg.max_thresh {
            Some(self.cfg.max_p * (self.avg - self.cfg.min_thresh) / self.pre.thresh_range)
        } else if self.cfg.gentle && self.avg < self.pre.two_max_thresh {
            Some(
                self.cfg.max_p
                    + self.pre.one_minus_max_p * (self.avg - self.cfg.max_thresh)
                        / self.cfg.max_thresh,
            )
        } else {
            Some(1.0)
        }
    }
}

impl QueueDiscipline for Red {
    #[inline]
    fn enqueue(
        &mut self,
        pkt: PacketId,
        pool: &mut PacketPool,
        now: SimTime,
        rng: &mut dyn rand::RngCore,
    ) -> EnqueueResult {
        self.update_average(now);
        let result = self.enqueue_inner(pkt, pool, rng);
        // If the buffer is (still) empty — e.g. the arrival was dropped
        // while the average sat above max_thresh — the queue remains
        // idle: re-arm the idle clock so the average keeps decaying.
        // Without this the average freezes high and the queue blackholes
        // sparse retransmissions forever.
        if self.buf.is_empty() && self.idle_since.is_none() {
            self.idle_since = Some(now);
        }
        result
    }

    #[inline]
    fn dequeue(&mut self, now: SimTime) -> Option<PacketId> {
        let pkt = self.buf.pop_front();
        if self.buf.is_empty() && self.idle_since.is_none() {
            self.idle_since = Some(now);
        }
        pkt
    }

    #[inline]
    fn len(&self) -> usize {
        self.buf.len()
    }
}

impl Red {
    fn enqueue_inner(
        &mut self,
        pkt: PacketId,
        pool: &mut PacketPool,
        rng: &mut dyn rand::RngCore,
    ) -> EnqueueResult {
        // Hard limit applies regardless of the average (and is never an
        // ECN mark: there is physically no room).
        if self.buf.len() >= self.cfg.capacity {
            self.count = Some(0);
            return EnqueueResult::Dropped;
        }

        match self.base_drop_prob() {
            None => {
                self.count = None;
                self.buf.push_back(pkt);
                EnqueueResult::Enqueued
            }
            Some(pb) if pb >= 1.0 => {
                self.count = Some(0);
                self.drop_or_mark(pkt, pool)
            }
            Some(pb) => {
                let count = self.count.map_or(0, |c| c + 1);
                self.count = Some(count);
                // Count correction spreads drops uniformly across the
                // inter-drop interval: p_a = p_b / (1 - count * p_b).
                let denom = 1.0 - count as f64 * pb;
                let pa = if denom <= 0.0 {
                    1.0
                } else {
                    (pb / denom).min(1.0)
                };
                if rng.gen::<f64>() < pa {
                    self.count = Some(0);
                    self.drop_or_mark(pkt, pool)
                } else {
                    self.buf.push_back(pkt);
                    EnqueueResult::Enqueued
                }
            }
        }
    }

    /// Execute an early congestion signal: an ECN mark when both the
    /// queue and the packet are ECN-capable, a drop otherwise.
    fn drop_or_mark(&mut self, pkt: PacketId, pool: &mut PacketPool) -> EnqueueResult {
        if self.cfg.ecn && pool.get(pkt).ecn.is_capable() {
            pool.get_mut(pkt).ecn = crate::packet::Ecn::Marked;
            self.buf.push_back(pkt);
            EnqueueResult::Marked
        } else {
            EnqueueResult::Dropped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AgentId, FlowId, NodeId};
    use crate::packet::{DataInfo, Packet, Payload};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pkt(uid: u64) -> Packet {
        Packet {
            uid,
            flow: FlowId::from_index(0),
            seq: uid,
            size: 1000,
            payload: Payload::Data(DataInfo::default()),
            src_node: NodeId::from_index(0),
            dst_node: NodeId::from_index(1),
            src_agent: AgentId::from_index(0),
            dst_agent: AgentId::from_index(1),
            sent_at: SimTime::ZERO,
            ecn: Default::default(),
        }
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    /// Offer a fresh packet with the given uid; on rejection, free it
    /// from the pool the way the simulator does.
    fn offer(
        q: &mut dyn QueueDiscipline,
        pool: &mut PacketPool,
        uid: u64,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> EnqueueResult {
        let id = pool.insert(pkt(uid));
        let result = q.enqueue(id, pool, now, rng);
        if result == EnqueueResult::Dropped {
            pool.remove(id);
        }
        result
    }

    fn offer_ecn(
        q: &mut dyn QueueDiscipline,
        pool: &mut PacketPool,
        uid: u64,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> EnqueueResult {
        use crate::packet::Ecn;
        let mut p = pkt(uid);
        p.ecn = Ecn::Capable;
        let id = pool.insert(p);
        let result = q.enqueue(id, pool, now, rng);
        if result == EnqueueResult::Dropped {
            pool.remove(id);
        }
        result
    }

    #[test]
    fn droptail_respects_capacity_and_order() {
        let mut q = DropTail::new(2);
        let mut pool = PacketPool::new();
        let mut r = rng();
        assert_eq!(
            offer(&mut q, &mut pool, 1, SimTime::ZERO, &mut r),
            EnqueueResult::Enqueued
        );
        assert_eq!(
            offer(&mut q, &mut pool, 2, SimTime::ZERO, &mut r),
            EnqueueResult::Enqueued
        );
        assert_eq!(
            offer(&mut q, &mut pool, 3, SimTime::ZERO, &mut r),
            EnqueueResult::Dropped
        );
        assert_eq!(pool.get(q.dequeue(SimTime::ZERO).unwrap()).uid, 1);
        assert_eq!(pool.get(q.dequeue(SimTime::ZERO).unwrap()).uid, 2);
        assert!(q.dequeue(SimTime::ZERO).is_none());
        assert!(q.is_empty());
    }

    fn red_cfg() -> RedConfig {
        RedConfig {
            capacity: 100,
            min_thresh: 5.0,
            max_thresh: 15.0,
            max_p: 0.1,
            weight: 0.25,
            mean_pkt_time: SimDuration::from_millis(1),
            gentle: false,
            ecn: false,
        }
    }

    #[test]
    fn red_never_drops_below_min_thresh() {
        let mut q = Red::new(red_cfg());
        let mut pool = PacketPool::new();
        let mut r = rng();
        // With an empty queue the average stays near zero: no early drops.
        for i in 0..4 {
            assert_eq!(
                offer(&mut q, &mut pool, i, SimTime::from_millis(i), &mut r),
                EnqueueResult::Enqueued
            );
            let id = q.dequeue(SimTime::from_millis(i)).unwrap();
            pool.remove(id);
        }
    }

    #[test]
    fn red_drops_everything_when_average_exceeds_max_thresh() {
        let mut cfg = red_cfg();
        cfg.weight = 1.0; // average tracks the instantaneous queue
        let mut q = Red::new(cfg);
        let mut pool = PacketPool::new();
        let mut r = rng();
        for i in 0..16 {
            offer(&mut q, &mut pool, i, SimTime::ZERO, &mut r);
        }
        // Average is now >= 15; the next arrival must be dropped.
        assert_eq!(
            offer(&mut q, &mut pool, 99, SimTime::ZERO, &mut r),
            EnqueueResult::Dropped
        );
    }

    #[test]
    fn red_hard_limit_applies() {
        let mut cfg = red_cfg();
        cfg.capacity = 3;
        cfg.min_thresh = 50.0; // never early-drop
        cfg.max_thresh = 60.0;
        let mut q = Red::new(cfg);
        let mut pool = PacketPool::new();
        let mut r = rng();
        for i in 0..3 {
            assert_eq!(
                offer(&mut q, &mut pool, i, SimTime::ZERO, &mut r),
                EnqueueResult::Enqueued
            );
        }
        assert_eq!(
            offer(&mut q, &mut pool, 4, SimTime::ZERO, &mut r),
            EnqueueResult::Dropped
        );
    }

    #[test]
    fn red_average_decays_across_idle_periods() {
        let mut cfg = red_cfg();
        cfg.weight = 0.5;
        let mut q = Red::new(cfg);
        let mut pool = PacketPool::new();
        let mut r = rng();
        for i in 0..10 {
            offer(&mut q, &mut pool, i, SimTime::ZERO, &mut r);
        }
        let avg_busy = q.average();
        assert!(avg_busy > 1.0);
        while let Some(id) = q.dequeue(SimTime::from_millis(1)) {
            pool.remove(id);
        }
        // A long idle period should decay the average dramatically.
        offer(&mut q, &mut pool, 100, SimTime::from_secs(10), &mut r);
        assert!(
            q.average() < avg_busy * 0.01,
            "avg {} not decayed",
            q.average()
        );
    }

    #[test]
    fn red_drop_rate_scales_with_average_between_thresholds() {
        // Hold the instantaneous queue at a fixed level and measure the
        // early-drop fraction; it should be close to the configured curve.
        let mut cfg = red_cfg();
        cfg.weight = 1.0;
        cfg.capacity = 1000;
        let mut q = Red::new(cfg);
        let mut pool = PacketPool::new();
        let mut r = rng();
        // Fill to 10 packets: halfway between thresholds -> pb = 0.05.
        for i in 0..10 {
            offer(&mut q, &mut pool, i, SimTime::ZERO, &mut r);
        }
        let trials = 20_000;
        let mut drops = 0;
        for i in 0..trials {
            match offer(&mut q, &mut pool, 1000 + i, SimTime::ZERO, &mut r) {
                EnqueueResult::Dropped => drops += 1,
                EnqueueResult::Enqueued | EnqueueResult::Marked => {
                    // Restore the level so the operating point is fixed.
                    let got = q.dequeue(SimTime::ZERO);
                    pool.remove(got.expect("queue should not be empty"));
                }
            }
        }
        // With the count correction the inter-drop gap is uniform on
        // [1, 1/p_b], so the long-run drop rate is 2*p_b/(1+p_b), not p_b
        // (Floyd & Jacobson 1993, "method 2" uniform marking).
        let expected = 2.0 * 0.05 / 1.05;
        let rate = drops as f64 / trials as f64;
        assert!(
            (rate - expected).abs() < 0.012,
            "measured drop rate {rate} far from {expected}"
        );
    }

    /// Regression test: when the average sits above max_thresh and the
    /// queue is empty, drops must not freeze the average — the idle clock
    /// keeps running between (dropped) arrivals so sparse retransmissions
    /// eventually get through.
    #[test]
    fn red_average_decays_even_when_arrivals_are_dropped() {
        let mut cfg = red_cfg();
        cfg.weight = 0.01;
        cfg.capacity = 1000;
        let mut q = Red::new(cfg);
        let mut pool = PacketPool::new();
        let mut r = rng();
        // Hold the queue near 40 packets for 600 arrivals so the average
        // climbs well above max_thresh (15).
        for i in 0..40 {
            offer(&mut q, &mut pool, i, SimTime::ZERO, &mut r);
        }
        for i in 0..600u64 {
            if offer(&mut q, &mut pool, 100 + i, SimTime::ZERO, &mut r) == EnqueueResult::Enqueued {
                let id = q.dequeue(SimTime::ZERO).unwrap();
                pool.remove(id);
            }
        }
        assert!(q.average() > 15.0, "setup failed: avg {}", q.average());
        while let Some(id) = q.dequeue(SimTime::from_millis(1)) {
            pool.remove(id);
        }
        // First probe shortly after drain: average still high, dropped.
        let first = offer(&mut q, &mut pool, 9000, SimTime::from_millis(2), &mut r);
        assert_eq!(first, EnqueueResult::Dropped);
        // Probe again after a long idle gap: the average must have
        // decayed across the gap even though no dequeue happened since
        // the dropped probe.
        let later = offer(&mut q, &mut pool, 9001, SimTime::from_secs(5), &mut r);
        assert_eq!(later, EnqueueResult::Enqueued);
    }

    #[test]
    fn red_with_ecn_marks_capable_packets_instead_of_dropping() {
        use crate::packet::Ecn;
        let mut cfg = red_cfg();
        cfg.weight = 1.0; // average tracks the instantaneous queue
        cfg.ecn = true;
        let mut q = Red::new(cfg);
        let mut pool = PacketPool::new();
        let mut r = rng();
        for i in 0..16 {
            offer_ecn(&mut q, &mut pool, i, SimTime::ZERO, &mut r);
        }
        // Average >= max_thresh: a capable packet is marked, not dropped.
        assert_eq!(
            offer_ecn(&mut q, &mut pool, 99, SimTime::ZERO, &mut r),
            EnqueueResult::Marked
        );
        // A non-capable packet is still dropped.
        assert_eq!(
            offer(&mut q, &mut pool, 100, SimTime::ZERO, &mut r),
            EnqueueResult::Dropped
        );
        // Marked packets come out carrying the CE codepoint (the fill
        // itself may have produced probabilistic early marks too).
        let marked = std::iter::from_fn(|| q.dequeue(SimTime::ZERO))
            .filter(|id| pool.get(*id).ecn == Ecn::Marked)
            .count();
        assert!(marked >= 1, "no CE-marked packet dequeued");
        // Hard-limit overflow always drops, even for capable packets.
        let mut cfg = red_cfg();
        cfg.capacity = 1;
        cfg.min_thresh = 50.0;
        cfg.max_thresh = 60.0;
        cfg.ecn = true;
        let mut q = Red::new(cfg);
        assert_eq!(
            offer_ecn(&mut q, &mut pool, 0, SimTime::ZERO, &mut r),
            EnqueueResult::Enqueued
        );
        assert_eq!(
            offer_ecn(&mut q, &mut pool, 1, SimTime::ZERO, &mut r),
            EnqueueResult::Dropped
        );
    }

    #[test]
    #[should_panic(expected = "min_thresh < max_thresh")]
    fn red_rejects_inverted_thresholds() {
        let mut cfg = red_cfg();
        cfg.min_thresh = 20.0;
        Red::new(cfg);
    }

    #[test]
    fn paper_defaults_follow_section_3() {
        let cfg = RedConfig::paper_defaults(62.5, SimDuration::from_micros(800));
        assert_eq!(cfg.capacity, 156);
        assert!((cfg.min_thresh - 15.625).abs() < 1e-9);
        assert!((cfg.max_thresh - 78.125).abs() < 1e-9);
    }
}
