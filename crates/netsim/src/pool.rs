//! Slab allocator for in-flight packets.
//!
//! The simulator moves every packet through several owners per hop (the
//! event queue, a link buffer, the in-service slot) and a [`Packet`] is a
//! 120-byte struct, so carrying packets *by value* through those layers
//! meant memcpying them on every heap sift and `VecDeque` shuffle. The
//! pool gives each live packet one stable slot and hands out a 4-byte
//! [`PacketId`]; events and queue disciplines move ids, and the packet
//! bytes are written once at send time and read in place until delivery
//! or drop.
//!
//! Freed slots go on a free list and are reused LIFO, so a steady-state
//! simulation performs no per-packet allocation at all: the slab grows to
//! the peak number of simultaneously in-flight packets and then recycles.
//!
//! # Lifetime rules
//!
//! * [`PacketPool::insert`] transfers ownership of the packet to the pool
//!   and returns its id.
//! * Exactly one owner holds each id at a time (an `Arrive` event, a link
//!   buffer slot, or a link's in-service slot); ids are moved, never
//!   duplicated.
//! * The owner ends the packet's life with [`PacketPool::remove`]
//!   (delivery hands the value to the agent; drops discard it). Using an
//!   id after `remove` is a logic error; debug builds panic on it.

use crate::packet::Packet;

/// Index of a live packet inside a [`PacketPool`].
///
/// Deliberately small (4 bytes): event-queue entries and link buffers
/// store these instead of whole packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(u32);

impl PacketId {
    /// The raw slot index (stable for the packet's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A slab of packets with a LIFO free list.
///
/// The hot fields (the slab and free-list vector headers) total 48 bytes;
/// the 64-byte alignment keeps them on one cache line wherever the pool
/// is embedded, so an `insert`/`get`/`discard` touches exactly one line
/// of pool metadata. A layout test pins this.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct PacketPool {
    slots: Vec<Packet>,
    free: Vec<u32>,
    /// Debug-only use-after-free / double-free guard.
    #[cfg(debug_assertions)]
    live: Vec<bool>,
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> Self {
        PacketPool::default()
    }

    /// Store `pkt` and return its id, reusing a freed slot when one is
    /// available.
    #[inline]
    pub fn insert(&mut self, pkt: Packet) -> PacketId {
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = pkt;
            #[cfg(debug_assertions)]
            {
                self.live[idx as usize] = true;
            }
            PacketId(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("packet pool overflow");
            self.slots.push(pkt);
            #[cfg(debug_assertions)]
            self.live.push(true);
            PacketId(idx)
        }
    }

    /// Read a live packet.
    #[inline]
    pub fn get(&self, id: PacketId) -> &Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[id.index()], "read of freed packet {id:?}");
        &self.slots[id.index()]
    }

    /// Mutate a live packet (e.g. an ECN upgrade at a router).
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[id.index()], "write to freed packet {id:?}");
        &mut self.slots[id.index()]
    }

    /// End the packet's life: return its value and recycle the slot.
    #[inline]
    pub fn remove(&mut self, id: PacketId) -> Packet {
        self.discard(id);
        self.slots[id.index()]
    }

    /// End the packet's life without reading it back — the drop paths'
    /// form of [`Self::remove`], skipping the 120-byte copy out of the
    /// slab when the caller only needs the slot freed.
    #[inline]
    pub fn discard(&mut self, id: PacketId) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.live[id.index()], "double free of packet {id:?}");
            self.live[id.index()] = false;
        }
        self.free.push(id.0);
    }

    /// Number of live packets.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no packets are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (the in-flight high-water mark).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Uids of all live packets, in slot order. O(slots) — meant for
    /// teardown auditing, never the hot path.
    pub fn live_uids(&self) -> Vec<u64> {
        let mut freed = vec![false; self.slots.len()];
        for &ix in &self.free {
            freed[ix as usize] = true;
        }
        self.slots
            .iter()
            .zip(&freed)
            .filter(|(_, &f)| !f)
            .map(|(p, _)| p.uid)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AgentId, FlowId, NodeId};
    use crate::packet::{DataInfo, Payload};
    use crate::time::SimTime;

    fn pkt(uid: u64) -> Packet {
        Packet {
            uid,
            flow: FlowId::from_index(0),
            seq: uid,
            size: 1000,
            payload: Payload::Data(DataInfo::default()),
            src_node: NodeId::from_index(0),
            dst_node: NodeId::from_index(1),
            src_agent: AgentId::from_index(0),
            dst_agent: AgentId::from_index(1),
            sent_at: SimTime::ZERO,
            ecn: Default::default(),
        }
    }

    #[test]
    fn pool_metadata_is_cache_line_aligned() {
        assert_eq!(core::mem::align_of::<PacketPool>(), 64);
    }

    #[test]
    fn discard_frees_without_reading() {
        let mut pool = PacketPool::new();
        let a = pool.insert(pkt(1));
        pool.discard(a);
        assert!(pool.is_empty());
        // The freed slot is recycled LIFO, same as remove.
        let b = pool.insert(pkt(2));
        assert_eq!(b.index(), a.index());
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut pool = PacketPool::new();
        let a = pool.insert(pkt(1));
        let b = pool.insert(pkt(2));
        assert_eq!(pool.get(a).uid, 1);
        assert_eq!(pool.get(b).uid, 2);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.remove(a).uid, 1);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.remove(b).uid, 2);
        assert!(pool.is_empty());
    }

    #[test]
    fn freed_slots_are_recycled_not_grown() {
        let mut pool = PacketPool::new();
        let ids: Vec<_> = (0..8).map(|i| pool.insert(pkt(i))).collect();
        assert_eq!(pool.capacity(), 8);
        for id in ids {
            pool.remove(id);
        }
        // Steady state: the slab stops growing.
        for round in 0..100u64 {
            let id = pool.insert(pkt(round));
            assert!(id.index() < 8, "pool grew despite free slots");
            pool.remove(id);
        }
        assert_eq!(pool.capacity(), 8);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut pool = PacketPool::new();
        let id = pool.insert(pkt(5));
        pool.get_mut(id).ecn = crate::packet::Ecn::Marked;
        assert_eq!(pool.get(id).ecn, crate::packet::Ecn::Marked);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_is_caught_in_debug() {
        let mut pool = PacketPool::new();
        let id = pool.insert(pkt(0));
        pool.remove(id);
        pool.remove(id);
    }
}
