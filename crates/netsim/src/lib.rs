//! # slowcc-netsim
//!
//! A deterministic, packet-level, discrete-event network simulator — the
//! substrate for the SIGCOMM 2001 *"Dynamic Behavior of Slowly-Responsive
//! Congestion Control Algorithms"* reproduction. It plays the role ns-2
//! played for the paper:
//!
//! * nodes with static routing, unidirectional links with serialization
//!   and propagation delay ([`topology`] builds the paper's dumbbell),
//! * DropTail and RED buffers ([`queue`]),
//! * scripted per-packet loss patterns ([`link::LossPattern`]) for the
//!   smoothness experiments,
//! * an agent model ([`sim::Agent`]) under which the congestion control
//!   protocols in `slowcc-core` and the traffic sources in
//!   `slowcc-traffic` are implemented,
//! * automatic per-flow and per-link statistics ([`stats`]).
//!
//! Runs are bit-for-bit reproducible for a given seed.
//!
//! ## Example
//!
//! ```
//! use slowcc_netsim::prelude::*;
//!
//! // Two hosts across the paper's 10 Mb/s RED dumbbell.
//! let mut sim = Simulator::new(42);
//! let db = Dumbbell::build(&mut sim, DumbbellConfig::paper(10e6));
//! let pair = db.add_host_pair(&mut sim);
//!
//! // A sink that just counts, and a source that sends one packet.
//! struct Sink;
//! impl Agent for Sink {
//!     fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
//! }
//! struct OneShot { flow: FlowId, dst_node: NodeId, dst_agent: AgentId }
//! impl Agent for OneShot {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.send(PacketSpec::data(self.flow, 0, 1000, self.dst_node, self.dst_agent));
//!     }
//!     fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
//! }
//!
//! let sink = sim.add_agent(pair.right, Box::new(Sink));
//! let flow = sim.new_flow();
//! sim.add_agent(pair.left, Box::new(OneShot { flow, dst_node: pair.right, dst_agent: sink }));
//! sim.run_until(SimTime::from_millis(100));
//! assert_eq!(sim.stats().flow(flow).unwrap().total_rx_packets, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod budget;
pub mod event;
pub mod faults;
pub mod ids;
pub mod link;
pub mod node;
pub mod packet;
pub mod pool;
pub mod queue;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

/// The handful of names almost every user needs.
pub mod prelude {
    pub use crate::audit::{AuditMode, AuditReport};
    pub use crate::budget::{Budget, SimAbort};
    pub use crate::faults::{FaultPlan, FlapWindow};
    pub use crate::ids::{AgentId, FlowId, LinkId, NodeId};
    pub use crate::link::{BernoulliLoss, Link, LossPattern, MarkPattern};
    pub use crate::packet::{AckInfo, DataInfo, Ecn, Packet, PacketSpec, Payload};
    pub use crate::pool::{PacketId, PacketPool};
    pub use crate::queue::{DropTail, EnqueueResult, QueueDiscipline, Red, RedConfig};
    pub use crate::sim::{Agent, Ctx, Simulator};
    pub use crate::stats::Stats;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{Dumbbell, DumbbellConfig, DumbbellOptions, HostPair, ParkingLot, QueueKind};
    pub use crate::trace::{NsTextTrace, TraceEvent, TraceKind, TraceSink, VecTrace};
}
