//! Packets and their payloads.
//!
//! The simulator is packet-level: every data segment and every
//! acknowledgment is an individual [`Packet`] that occupies queue space and
//! consumes link transmission time. Payloads carry only the header fields
//! the congestion-control agents need (sequence numbers, timestamp echoes,
//! receiver reports); user data is represented by `size` alone.

use crate::ids::{AgentId, FlowId, NodeId};
use crate::time::SimTime;

/// ECN codepoint of a packet (RFC 2481, which the paper cites for its
/// Section 4.2.2 marking model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ecn {
    /// The flow did not negotiate ECN; congestion is signalled by drops.
    #[default]
    NotCapable,
    /// ECN-capable transport; routers may mark instead of dropping.
    Capable,
    /// Congestion experienced: the packet was marked in the network.
    Marked,
}

impl Ecn {
    /// True for `Capable` or `Marked`.
    pub fn is_capable(self) -> bool {
        !matches!(self, Ecn::NotCapable)
    }
}

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Payload {
    /// A data segment of a transport flow.
    Data(DataInfo),
    /// An acknowledgment / receiver report for a transport flow.
    Ack(AckInfo),
}

impl Payload {
    /// True for data segments.
    pub fn is_data(&self) -> bool {
        matches!(self, Payload::Data(_))
    }

    /// True for acknowledgments.
    pub fn is_ack(&self) -> bool {
        matches!(self, Payload::Ack(_))
    }
}

/// Header fields carried by data segments.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DataInfo {
    /// The sender's current RTT estimate in nanoseconds, or zero when
    /// unknown. TFRC stamps this so the receiver can coalesce packet
    /// losses within one RTT into a single loss event (RFC 3448 §3.2.1).
    pub sender_rtt_ns: u64,
}

/// Fields carried by an acknowledgment or receiver report.
///
/// This is the union of what the window-based agents (cumulative ACK +
/// timestamp echo) and the rate-based agents (TFRC-style receiver reports)
/// need. Unused fields are zero for protocols that do not use them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AckInfo {
    /// Next in-order sequence number expected by the receiver
    /// (cumulative acknowledgment).
    pub cum_ack: u64,
    /// Sequence number of the data packet that triggered this ACK.
    pub acked_seq: u64,
    /// Timestamp echo: `sent_at` of the most recently received data packet.
    pub echo_ts: SimTime,
    /// Time the echoed packet spent held at the receiver before this
    /// report was emitted, so the sender can subtract it from its RTT
    /// sample (relevant for once-per-RTT TFRC reports). Held delays are
    /// bounded by a feedback interval (~1 RTT), so 32 bits (≈4.29 s)
    /// always suffices; producers saturate on construction. The narrow
    /// field is what packs [`AckInfo`] into a single cache line — see
    /// the layout tests at the bottom of this module.
    pub echo_delay_ns: u32,
    /// Receive rate measured by the receiver over roughly the last RTT,
    /// in bytes per second (TFRC `X_recv`).
    pub recv_rate_bps: f64,
    /// Loss event rate estimated by the receiver (TFRC `p`); zero when no
    /// loss has been seen or the protocol does not estimate it.
    pub loss_event_rate: f64,
    /// Total data packets received so far on this flow.
    pub recv_count: u64,
    /// Receiver-advertised sending rate in bytes/second (used by
    /// receiver-driven protocols such as TEAR; zero otherwise).
    pub advertised_rate_bps: f64,
    /// True when a new loss event started since the previous receiver
    /// report (drives the `conservative_` self-clocking option the paper
    /// adds to TFRC in Section 4.1.1).
    pub new_loss_event: bool,
    /// ECN echo: the acknowledged data packet arrived marked.
    pub ecn_echo: bool,
}

impl AckInfo {
    /// A cumulative ACK as produced by a TCP-style receiver.
    pub fn cumulative(cum_ack: u64, acked_seq: u64, echo_ts: SimTime) -> Self {
        AckInfo {
            cum_ack,
            acked_seq,
            echo_ts,
            echo_delay_ns: 0,
            recv_rate_bps: 0.0,
            loss_event_rate: 0.0,
            recv_count: 0,
            advertised_rate_bps: 0.0,
            new_loss_event: false,
            ecn_echo: false,
        }
    }
}

/// A packet in flight.
///
/// `Copy`: every field is plain-old-data, so the pool can hand packets
/// out by bitwise copy instead of `Clone` calls, and the layout tests
/// below pin the struct to two cache lines (128 bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Globally unique packet id, assigned at send time.
    pub uid: u64,
    /// Flow the packet belongs to (for routing of statistics, not routing
    /// of the packet itself).
    pub flow: FlowId,
    /// Transport sequence number (data packets; echoed meaning for ACKs).
    pub seq: u64,
    /// Wire size in bytes, including an abstract header.
    pub size: u32,
    /// Payload kind and header fields.
    pub payload: Payload,
    /// Originating node.
    pub src_node: NodeId,
    /// Destination node.
    pub dst_node: NodeId,
    /// Agent that sent the packet (so the receiver can reply without
    /// out-of-band knowledge).
    pub src_agent: AgentId,
    /// Agent the packet is delivered to at `dst_node`.
    pub dst_agent: AgentId,
    /// Time the packet was handed to the network by its source.
    pub sent_at: SimTime,
    /// ECN codepoint; routers may upgrade `Capable` to `Marked`.
    pub ecn: Ecn,
}

impl Packet {
    /// True for data segments.
    pub fn is_data(&self) -> bool {
        self.payload.is_data()
    }

    /// True for acknowledgments.
    pub fn is_ack(&self) -> bool {
        self.payload.is_ack()
    }

    /// The ACK header fields, if this is an acknowledgment.
    pub fn ack(&self) -> Option<&AckInfo> {
        match &self.payload {
            Payload::Ack(a) => Some(a),
            Payload::Data(_) => None,
        }
    }
}

/// Everything an agent specifies when transmitting; the simulator fills in
/// the originating node/agent and the timestamp.
#[derive(Debug, Clone)]
pub struct PacketSpec {
    /// Flow for statistics accounting.
    pub flow: FlowId,
    /// Transport sequence number.
    pub seq: u64,
    /// Wire size in bytes.
    pub size: u32,
    /// Payload kind and header fields.
    pub payload: Payload,
    /// Destination node.
    pub dst_node: NodeId,
    /// Agent the packet is delivered to at the destination node.
    pub dst_agent: AgentId,
    /// ECN codepoint requested by the sender.
    pub ecn: Ecn,
}

impl PacketSpec {
    /// Request ECN-capable transport for this packet.
    pub fn with_ecn(mut self) -> Self {
        self.ecn = Ecn::Capable;
        self
    }

    /// A data segment addressed to `dst_agent` at `dst_node`.
    pub fn data(flow: FlowId, seq: u64, size: u32, dst_node: NodeId, dst_agent: AgentId) -> Self {
        PacketSpec {
            flow,
            seq,
            size,
            payload: Payload::Data(DataInfo::default()),
            dst_node,
            dst_agent,
            ecn: Ecn::NotCapable,
        }
    }

    /// A data segment stamped with the sender's RTT estimate.
    pub fn data_with_rtt(
        flow: FlowId,
        seq: u64,
        size: u32,
        dst_node: NodeId,
        dst_agent: AgentId,
        sender_rtt_ns: u64,
    ) -> Self {
        PacketSpec {
            flow,
            seq,
            size,
            payload: Payload::Data(DataInfo { sender_rtt_ns }),
            dst_node,
            dst_agent,
            ecn: Ecn::NotCapable,
        }
    }

    /// An acknowledgment addressed back to the sender of `pkt`.
    pub fn ack_to(pkt: &Packet, size: u32, info: AckInfo) -> Self {
        PacketSpec {
            flow: pkt.flow,
            seq: info.acked_seq,
            size,
            payload: Payload::Ack(info),
            dst_node: pkt.src_node,
            dst_agent: pkt.src_agent,
            ecn: Ecn::NotCapable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet() -> Packet {
        Packet {
            uid: 7,
            flow: FlowId::from_index(1),
            seq: 42,
            size: 1000,
            payload: Payload::Data(DataInfo::default()),
            src_node: NodeId::from_index(0),
            dst_node: NodeId::from_index(3),
            src_agent: AgentId::from_index(5),
            dst_agent: AgentId::from_index(6),
            sent_at: SimTime::from_millis(10),
            ecn: Ecn::default(),
        }
    }

    #[test]
    fn payload_predicates() {
        let p = sample_packet();
        assert!(p.is_data());
        assert!(!p.is_ack());
        assert!(p.ack().is_none());
    }

    /// `static_assert`-style layout pins for the data-plane structs. The
    /// simulator memcpys these on every send/deliver and scans them in
    /// the pool slab, so a field type change that silently grows them is
    /// a perf regression this test turns into a compile-visible failure.
    /// Shrinking is fine — tighten the constants when it happens.
    #[test]
    fn data_plane_struct_layout_is_packed() {
        use core::mem::size_of;
        // One cache line: 7 words of report fields + echo_delay_ns(u32)
        // + two bools + padding.
        assert_eq!(size_of::<AckInfo>(), 64);
        assert_eq!(size_of::<DataInfo>(), 8);
        // Tag-free: the discriminant lives in a niche of AckInfo's bool
        // padding, so the payload union costs no extra word.
        assert_eq!(size_of::<Payload>(), 64);
        // Payload + uid/seq/sent_at + size + 4 ids + ecn — 113 bytes of
        // fields reordered by the compiler into 120 (down from 136
        // before `echo_delay_ns` was narrowed).
        assert_eq!(size_of::<Packet>(), 120);
        fn assert_copy<T: Copy>() {}
        assert_copy::<Packet>();
    }

    #[test]
    fn ack_to_reverses_addressing() {
        let data = sample_packet();
        let info = AckInfo::cumulative(43, 42, data.sent_at);
        let spec = PacketSpec::ack_to(&data, 40, info);
        assert_eq!(spec.dst_node, data.src_node);
        assert_eq!(spec.dst_agent, data.src_agent);
        assert_eq!(spec.flow, data.flow);
        assert!(matches!(spec.payload, Payload::Ack(a) if a.cum_ack == 43));
    }
}
