//! The simulator: arenas for nodes, links and agents, the event loop, and
//! the [`Ctx`] handle through which agents interact with the network.
//!
//! # Model
//!
//! * **Agents** are protocol endpoints or traffic sources attached to a
//!   node. They are inert state machines driven by three callbacks:
//!   [`Agent::on_start`], [`Agent::on_packet`] and [`Agent::on_timer`].
//!   They never block and they never run concurrently; all interaction
//!   with the world goes through the [`Ctx`] passed to each callback.
//! * **Packets** sent via [`Ctx::send`] are routed hop by hop: each hop
//!   offers the packet to the outgoing link, which either drops it
//!   (scripted loss, early drop, buffer overflow) or serializes it at the
//!   link rate and delivers it after the propagation delay.
//! * **Timers** are fire-and-forget: [`Ctx::set_timer`] schedules a token
//!   that is handed back to the agent. There is no cancellation API;
//!   agents version their tokens and ignore stale ones (the discipline
//!   used by every agent in this workspace).
//!
//! # Determinism
//!
//! Runs are bit-for-bit reproducible for a given seed: the event queue
//! breaks timestamp ties by scheduling order, all arenas are index-based,
//! and the only randomness is the seeded RNG exposed via [`Ctx::rng`].

use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};
use std::sync::OnceLock;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::audit::{self, AuditMode, AuditReport, Auditor};
use crate::event::{EventKind, EventQueue, SchedulerKind};
use crate::ids::{AgentId, FlowId, LinkId, NodeId};
use crate::link::Link;
use crate::node::Node;
use crate::packet::{Packet, PacketSpec, Payload};
use crate::pool::{PacketId, PacketPool};
use crate::queue::EnqueueResult;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::trace::{DropReason, TraceEvent, TraceKind, TraceSink};

/// A protocol endpoint or traffic source.
///
/// Implementations live in `slowcc-core` (congestion control agents) and
/// `slowcc-traffic` (CBR sources, flash crowds); tests implement ad-hoc
/// agents freely.
pub trait Agent: Send {
    /// Called once at the agent's scheduled start time.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when a packet addressed to this agent is delivered.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}

    /// Optional downcast hook so tests and experiment harnesses can
    /// inspect agent state after a run (`Some(self)` in implementations
    /// that opt in).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Whether this agent considers its work finished at `now` (flow
    /// completed, or past its scripted stop time). Only consulted by the
    /// audit layer: a done agent that re-arms a timer from its own timer
    /// callback is flagged as a timer leak, because it will tick forever.
    /// The default `false` opts out — agents without a notion of "done"
    /// are never flagged.
    fn audit_done(&self, _now: SimTime) -> bool {
        false
    }
}

struct AgentSlot {
    node: NodeId,
    /// Taken out while the agent runs so `Ctx` can borrow the world.
    agent: Option<Box<dyn Agent>>,
}

/// Everything except the agents; borrowed mutably by [`Ctx`] while an
/// agent runs.
struct World {
    now: SimTime,
    queue: EventQueue,
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// All live packets; events and link buffers reference slots by
    /// [`PacketId`], so the hot path moves 4-byte ids, not packet bytes.
    pool: PacketPool,
    stats: Stats,
    rng: SmallRng,
    next_uid: u64,
    trace: Option<Box<dyn TraceSink>>,
    /// Invariant auditor, when enabled (see [`crate::audit`]). Boxed so
    /// the disabled case costs one null check per hook.
    audit: Option<Box<Auditor>>,
}

/// Record a trace event if a sink is installed. Free function (rather
/// than a `World` method) so hot paths that hold individual field
/// borrows of the world can still emit traces.
#[inline]
fn trace_event(
    trace: &mut Option<Box<dyn TraceSink>>,
    now: SimTime,
    kind: TraceKind,
    pkt: &Packet,
) {
    if let Some(sink) = trace.as_mut() {
        sink.record(&TraceEvent::new(now, kind, pkt));
    }
}

impl World {
    #[inline]
    fn trace(&mut self, kind: TraceKind, pkt: &Packet) {
        trace_event(&mut self.trace, self.now, kind, pkt);
    }
}

impl World {
    /// Offer `pkt` to `link`: run the fault pre-stage (duplication and
    /// hold-for-reorder, see [`crate::faults`]), then admit the packet to
    /// the link proper.
    ///
    /// Duplicates and held packets re-enter through the event queue
    /// ([`EventKind::FaultRelease`]) and are then *admitted* directly —
    /// the pre-stage runs once per hop offer, so a duplicate is never
    /// re-duplicated and a held packet never re-held.
    fn offer_to_link(&mut self, link_id: LinkId, pkt: PacketId) {
        let now = self.now;
        if self.links[link_id.index()].faults.is_some() {
            let World {
                links,
                pool,
                stats,
                queue,
                trace,
                audit,
                next_uid,
                ..
            } = self;
            let link = &mut links[link_id.index()];
            let faults = link.faults.as_mut().expect("checked above");
            if faults.should_duplicate() {
                // The clone is a brand-new packet as far as the books are
                // concerned: fresh uid, injected into the ledger, its own
                // pool slot. It joins the link behind the original via
                // the event queue's tie-break.
                let mut dup = pool.get(pkt).clone();
                dup.uid = *next_uid;
                *next_uid += 1;
                stats.record_link_duplicate(link_id);
                if let Some(a) = audit.as_deref_mut() {
                    a.on_inject(dup.uid);
                }
                trace_event(trace, now, TraceKind::FaultDup { link: link_id }, &dup);
                let dup_id = pool.insert(dup);
                queue.schedule(
                    now,
                    EventKind::FaultRelease {
                        link: link_id,
                        packet: dup_id,
                        held: false,
                    },
                );
            }
            if let Some(hold) = faults.should_hold() {
                // Not an arrival yet: the link first sees the packet at
                // release time, so the conservation books stay balanced.
                stats.record_link_fault_held(link_id);
                trace_event(trace, now, TraceKind::FaultHold { link: link_id }, pool.get(pkt));
                queue.schedule(
                    now + hold,
                    EventKind::FaultRelease {
                        link: link_id,
                        packet: pkt,
                        held: true,
                    },
                );
                return;
            }
        }
        self.admit_to_link(link_id, pkt);
    }

    /// Admit `pkt` to `link`: run the loss script, then the queue
    /// discipline, then start serialization if the transmitter is idle.
    ///
    /// This is the hottest function in the simulator (every hop of every
    /// packet lands here), so the link is indexed once and held as a
    /// single borrow alongside disjoint borrows of the other world
    /// fields, instead of re-indexing `self.links` per access.
    fn admit_to_link(&mut self, link_id: LinkId, pkt: PacketId) {
        let now = self.now;
        let World {
            links,
            pool,
            stats,
            rng,
            trace,
            audit,
            ..
        } = self;
        let link = &mut links[link_id.index()];
        stats.record_link_arrival(link_id, now, link.queue_len());
        if let Some(a) = audit.as_deref_mut() {
            a.on_link_arrival(link_id);
        }

        // Scripted outage: a down link blackholes everything offered to
        // it, accounted as ordinary link drops.
        if link.faults.as_mut().is_some_and(|f| f.is_down(now)) {
            stats.record_link_flap_drop(link_id, now);
            if let Some(a) = audit.as_deref_mut() {
                a.on_link_drop(link_id, pool.get(pkt).uid);
            }
            trace_event(
                trace,
                now,
                TraceKind::Drop {
                    link: link_id,
                    reason: DropReason::LinkDown,
                },
                pool.get(pkt),
            );
            pool.discard(pkt);
            return;
        }

        // Scripted loss first.
        if let Some(loss) = link.loss.as_mut() {
            if loss.should_drop(pool.get(pkt), now) {
                stats.record_link_drop(link_id, now);
                if let Some(a) = audit.as_deref_mut() {
                    a.on_link_drop(link_id, pool.get(pkt).uid);
                }
                trace_event(
                    trace,
                    now,
                    TraceKind::Drop {
                        link: link_id,
                        reason: DropReason::LossPattern,
                    },
                    pool.get(pkt),
                );
                pool.discard(pkt);
                return;
            }
        }
        // Scripted ECN marking next.
        if pool.get(pkt).ecn.is_capable() {
            let mut marked = false;
            if let Some(marker) = link.marker.as_mut() {
                marked = marker.should_mark(pool.get(pkt), now);
            }
            if marked {
                pool.get_mut(pkt).ecn = crate::packet::Ecn::Marked;
                stats.record_link_mark(link_id, now);
                trace_event(trace, now, TraceKind::Mark { link: link_id }, pool.get(pkt));
            }
        }
        trace_event(trace, now, TraceKind::Enqueue { link: link_id }, pool.get(pkt));

        // The buffer. The packet stays pooled whatever the discipline
        // decides, so the drop/mark outcomes trace straight from the pool
        // slot — no per-packet snapshot on either path.
        let busy = link.busy();
        let result = link.queue.enqueue(pkt, pool, now, rng);
        match result {
            EnqueueResult::Enqueued | EnqueueResult::Marked => {
                if result == EnqueueResult::Marked {
                    stats.record_link_mark(link_id, now);
                    trace_event(trace, now, TraceKind::Mark { link: link_id }, pool.get(pkt));
                }
                if !busy {
                    // ns-2 style: the arriving packet traverses the
                    // (empty) discipline so RED's average sees it, then
                    // starts serializing immediately.
                    let next = link
                        .queue
                        .dequeue(now)
                        .expect("packet just enqueued must dequeue");
                    self.start_service(link_id, next);
                }
            }
            EnqueueResult::Dropped => {
                stats.record_link_drop(link_id, now);
                if let Some(a) = audit.as_deref_mut() {
                    a.on_link_drop(link_id, pool.get(pkt).uid);
                }
                trace_event(
                    trace,
                    now,
                    TraceKind::Drop {
                        link: link_id,
                        reason: DropReason::Queue,
                    },
                    pool.get(pkt),
                );
                pool.discard(pkt);
            }
        }
    }

    fn start_service(&mut self, link_id: LinkId, pkt: PacketId) {
        let link = &mut self.links[link_id.index()];
        debug_assert!(!link.busy(), "start_service on busy link");
        let tx = link.tx_time(self.pool.get(pkt).size);
        link.in_service = Some(pkt);
        self.queue
            .schedule(self.now + tx, EventKind::LinkTxComplete { link: link_id });
    }

    fn on_tx_complete(&mut self, link_id: LinkId) {
        let now = self.now;
        let World {
            links,
            pool,
            queue,
            stats,
            trace,
            audit,
            ..
        } = self;
        let link = &mut links[link_id.index()];
        let pkt = link
            .in_service
            .take()
            .expect("TxComplete without a packet in flight");
        stats.record_link_tx(link_id, now, pool.get(pkt).size);
        if let Some(a) = audit.as_deref_mut() {
            a.on_link_departure(link_id, pool.get(pkt).size);
        }
        trace_event(trace, now, TraceKind::Dequeue { link: link_id }, pool.get(pkt));
        // Fault-layer delay jitter stretches this packet's propagation.
        let jitter = link
            .faults
            .as_mut()
            .map_or(SimDuration::ZERO, |f| f.jitter());
        queue.schedule(
            now + link.delay + jitter,
            EventKind::Arrive {
                node: link.dst,
                packet: pkt,
            },
        );
        // Pull the next packet, if any (`in_service` is already vacated).
        if let Some(next) = link.queue.dequeue(now) {
            self.start_service(link_id, next);
        }
    }

    /// Route `pkt` out of `node`, or panic on a routing hole (our
    /// topologies are static, so a missing route is a programming error
    /// worth failing loudly on).
    fn forward(&mut self, node: NodeId, pkt: PacketId) {
        let p = self.pool.get(pkt);
        let out = self.nodes[node.index()].route(p.dst_node).unwrap_or_else(|| {
            panic!(
                "no route from {node} to {} (flow {}, uid {})",
                p.dst_node, p.flow, p.uid
            )
        });
        self.offer_to_link(out, pkt);
    }
}

/// Process-wide programmatic batching override:
/// 0 = unset, 1 = force off, 2 = force on.
static BATCH_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The `SLOWCC_BATCH` environment knob, read once per process.
static ENV_BATCH: OnceLock<bool> = OnceLock::new();

/// Force every subsequently created [`Simulator`] to dispatch events
/// batched (`Some(true)`) or strictly one at a time (`Some(false)`);
/// `None` restores the default resolution (environment, then batched).
/// The unbatched path is retained for one release as the reference for
/// equivalence tests, exactly like the heap scheduler backend.
pub fn set_default_batching(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    BATCH_OVERRIDE.store(v, AtomicOrdering::Relaxed);
}

/// The dispatch mode new simulators get: the [`set_default_batching`]
/// override if set, else the `SLOWCC_BATCH` environment variable (`on` /
/// `1` or `off` / `0`), else batched.
pub fn default_batching() -> bool {
    match BATCH_OVERRIDE.load(AtomicOrdering::Relaxed) {
        1 => false,
        2 => true,
        _ => *ENV_BATCH.get_or_init(|| match std::env::var("SLOWCC_BATCH") {
            Ok(v) if v == "off" || v == "0" => false,
            Ok(v) if v == "on" || v == "1" => true,
            Ok(v) => panic!("SLOWCC_BATCH must be `on`/`1` or `off`/`0`, got `{v}`"),
            Err(_) => true,
        }),
    }
}

/// The discrete-event network simulator.
pub struct Simulator {
    world: World,
    agents: Vec<AgentSlot>,
    next_flow: u32,
    /// Whether [`Self::run_until`] dispatches timestamp batches (the
    /// default) or single events (see [`set_default_batching`]).
    batching: bool,
    /// Reusable arena the event queue drains each timestamp batch into;
    /// owned here so steady-state batch dispatch never allocates.
    batch_buf: Vec<EventKind>,
}

/// Default width of the statistics bins (10 ms: fine enough for the
/// paper's 0.2 s smoothness windows and 50 ms RTT-granularity metrics).
pub const DEFAULT_STATS_BIN: SimDuration = SimDuration::from_millis(10);

impl Simulator {
    /// A fresh simulator with the given RNG seed, on the process default
    /// event scheduler (see [`SchedulerKind::default_kind`]).
    pub fn new(seed: u64) -> Self {
        Simulator::with_stats_bin(seed, DEFAULT_STATS_BIN)
    }

    /// A fresh simulator with an explicit statistics bin width.
    pub fn with_stats_bin(seed: u64, bin: SimDuration) -> Self {
        Simulator {
            world: World {
                now: SimTime::ZERO,
                queue: EventQueue::new(),
                nodes: Vec::new(),
                links: Vec::new(),
                pool: PacketPool::new(),
                stats: Stats::new(bin),
                rng: SmallRng::seed_from_u64(seed),
                next_uid: 0,
                trace: None,
                audit: audit::default_mode().map(|mode| Box::new(Auditor::new(mode))),
            },
            agents: Vec::new(),
            next_flow: 0,
            batching: default_batching(),
            batch_buf: Vec::new(),
        }
    }

    /// A fresh simulator with the invariant auditor enabled in
    /// [`AuditMode::Strict`]: any violation of packet conservation,
    /// pool/ledger consistency, link accounting or timer discipline
    /// panics on the spot. See [`crate::audit`].
    pub fn with_audit(seed: u64) -> Self {
        Simulator::with_audit_mode(seed, AuditMode::Strict)
    }

    /// A fresh simulator with the invariant auditor enabled in `mode`.
    pub fn with_audit_mode(seed: u64, mode: AuditMode) -> Self {
        let mut sim = Simulator::new(seed);
        sim.world.audit = Some(Box::new(Auditor::new(mode)));
        sim
    }

    /// Whether this simulator is running under the invariant auditor.
    pub fn audit_enabled(&self) -> bool {
        self.world.audit.is_some()
    }

    /// Run the teardown audit (pool/ledger uid-set reconciliation, link
    /// conservation laws, timer accounting) and return the report. The
    /// report is also merged into the process-global accumulator read by
    /// [`audit::take_global_report`].
    ///
    /// Returns `None` when auditing is off, and on the second call (the
    /// auditor is consumed). In [`AuditMode::Strict`] the teardown checks
    /// panic on the first violation. If never called, [`Drop`] runs the
    /// same teardown.
    pub fn finish_audit(&mut self) -> Option<AuditReport> {
        let mut auditor = self.world.audit.take()?;
        let report = Self::audit_teardown(&mut auditor, &self.world);
        audit::merge_global(&report);
        Some(report)
    }

    fn audit_teardown(auditor: &mut Auditor, world: &World) -> AuditReport {
        let pool_live = world.pool.live_uids();
        let link_state: Vec<(usize, bool)> = world
            .links
            .iter()
            .map(|l| (l.queue_len(), l.busy()))
            .collect();
        auditor.finish(pool_live, &link_state, &world.stats)
    }

    /// Which event-scheduler backend this simulator runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.world.queue.kind()
    }

    /// Whether [`Self::run_until`] dispatches timestamp batches.
    pub fn batching_enabled(&self) -> bool {
        self.batching
    }

    /// Number of events dispatched so far: everything ever scheduled
    /// minus what is still pending. Derived from the queue's sequence
    /// counter, so it costs nothing on the hot path.
    pub fn events_processed(&self) -> u64 {
        self.world.queue.scheduled() - self.world.queue.len() as u64
    }

    /// Number of packets injected so far (the uid counter): every
    /// [`Ctx::send`] plus every fault-layer duplicate.
    pub fn packets_injected(&self) -> u64 {
        self.world.next_uid
    }

    /// High-water mark of simultaneously in-flight packets — the packet
    /// pool's slab size. Exposed so tests can assert the pool recycles
    /// instead of growing per packet.
    pub fn packet_pool_capacity(&self) -> usize {
        self.world.pool.capacity()
    }

    /// Add a node (host or router).
    pub fn add_node(&mut self) -> NodeId {
        self.world.nodes.push(Node::new());
        NodeId::from_index(self.world.nodes.len() - 1)
    }

    /// Add a unidirectional link from `src` and return its handle.
    /// Routing entries are installed separately via [`Self::add_route`]
    /// or [`Self::set_default_route`].
    pub fn add_link(&mut self, src: NodeId, link: Link) -> LinkId {
        let _ = src; // `src` documents intent; links are referenced by id.
        self.world.links.push(link);
        let id = LinkId::from_index(self.world.links.len() - 1);
        self.world.stats.ensure_link(id);
        id
    }

    /// Install a per-destination route at `node`.
    pub fn add_route(&mut self, node: NodeId, dst: NodeId, link: LinkId) {
        self.world.nodes[node.index()].add_route(dst, link);
    }

    /// Install the default route at `node`.
    pub fn set_default_route(&mut self, node: NodeId, link: LinkId) {
        self.world.nodes[node.index()].set_default_route(link);
    }

    /// Allocate a flow identifier for statistics accounting.
    pub fn new_flow(&mut self) -> FlowId {
        let id = FlowId::from_index(self.next_flow as usize);
        self.next_flow += 1;
        self.world.stats.ensure_flow(id);
        id
    }

    /// Reserve an agent id without installing the agent yet. Lets two
    /// endpoint agents refer to each other: reserve both ids, then build
    /// each agent with its peer's id and install with
    /// [`Self::install_agent`].
    pub fn reserve_agent(&mut self, node: NodeId) -> AgentId {
        self.agents.push(AgentSlot { node, agent: None });
        AgentId::from_index(self.agents.len() - 1)
    }

    /// Install a previously reserved agent, to be started at `start`.
    pub fn install_agent(&mut self, id: AgentId, agent: Box<dyn Agent>, start: SimTime) {
        let slot = &mut self.agents[id.index()];
        assert!(slot.agent.is_none(), "agent {id} installed twice");
        slot.agent = Some(agent);
        self.world
            .queue
            .schedule(start, EventKind::AgentStart { agent: id });
    }

    /// Add an agent at `node`, started at `start`.
    pub fn add_agent_at(&mut self, node: NodeId, agent: Box<dyn Agent>, start: SimTime) -> AgentId {
        let id = self.reserve_agent(node);
        self.install_agent(id, agent, start);
        id
    }

    /// Add an agent at `node`, started at time zero.
    pub fn add_agent(&mut self, node: NodeId, agent: Box<dyn Agent>) -> AgentId {
        self.add_agent_at(node, agent, SimTime::ZERO)
    }

    /// Install a trace sink receiving every packet event from now on.
    /// Tracing is off by default (full runs generate millions of
    /// events); install a filtered/capped sink for targeted debugging.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.world.trace = Some(sink);
    }

    /// Remove and return the current trace sink (e.g. to read a
    /// [`crate::trace::VecTrace`] back after a run).
    pub fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.world.trace.take()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Collected statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats_ref().stats
    }

    fn stats_ref(&self) -> &World {
        &self.world
    }

    /// Current buffer occupancy of `link` in packets.
    pub fn link_queue_len(&self, link: LinkId) -> usize {
        self.world.links[link.index()].queue_len()
    }

    /// Run until the event queue drains or `until` is reached, whichever
    /// comes first. The clock is left at `until` when the horizon is hit.
    ///
    /// The default inner loop is *timestamp-batched*: one
    /// [`EventQueue::drain_batch`] extracts every event sharing the head
    /// timestamp into a reusable arena, the clock advances once, and the
    /// events dispatch back-to-back in `(time, seq)` order — the exact
    /// order the single-pop loop produces, so output is byte-identical
    /// either way (pinned by `tests/batch_equivalence.rs` and the
    /// registry conformance suite). The audit pool cross-check runs once
    /// per batch instead of once per event; with auditing off the hook is
    /// a single null check per batch.
    pub fn run_until(&mut self, until: SimTime) {
        self.world.stats.set_reserve_hint(until);
        if self.batching {
            self.run_until_batched(until);
        } else {
            while let Some((time, kind)) = self.world.queue.pop_if_at_or_before(until) {
                self.process(time, kind);
            }
        }
        if self.world.now < until {
            self.world.now = until;
        }
    }

    fn run_until_batched(&mut self, until: SimTime) {
        // The arena lives on `self` but is taken out for the loop so
        // `drain_batch` (which borrows the queue mutably) can fill it.
        // Handlers dispatched from the batch never see it: events they
        // schedule — even at the batch's own timestamp — carry larger
        // sequence numbers and are picked up by a later `drain_batch`.
        let mut buf = std::mem::take(&mut self.batch_buf);
        while let Some(time) = self.world.queue.drain_batch(until, &mut buf) {
            debug_assert!(time >= self.world.now, "event queue went backwards");
            self.world.now = time;
            for &kind in &buf {
                self.dispatch_event(kind);
            }
            // O(1) per-batch cross-check: pool live slots vs ledger.
            // Every handler leaves the two reconciled, so checking at
            // batch granularity loses no violations (see audit docs).
            let World { audit, pool, now, .. } = &mut self.world;
            if let Some(a) = audit.as_deref_mut() {
                a.check_pool(pool.len(), *now);
            }
        }
        self.batch_buf = buf;
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((time, kind)) = self.world.queue.pop() else {
            return false;
        };
        self.process(time, kind);
        true
    }

    /// Advance the clock to `time` and fire `kind`, with the audit
    /// cross-check at per-event granularity (the unbatched loop and
    /// [`Self::step`]).
    fn process(&mut self, time: SimTime, kind: EventKind) {
        debug_assert!(time >= self.world.now, "event queue went backwards");
        self.world.now = time;
        self.dispatch_event(kind);
        // O(1) per-event cross-check: pool live slots vs packet ledger.
        let World { audit, pool, now, .. } = &mut self.world;
        if let Some(a) = audit.as_deref_mut() {
            a.check_pool(pool.len(), *now);
        }
    }

    /// Fire `kind` at the already-advanced clock.
    fn dispatch_event(&mut self, kind: EventKind) {
        match kind {
            EventKind::LinkTxComplete { link } => self.world.on_tx_complete(link),
            EventKind::Arrive { node, packet } => {
                if self.world.pool.get(packet).dst_node == node {
                    // Delivery ends the packet's pooled life; the agent
                    // receives the value.
                    let pkt = self.world.pool.remove(packet);
                    if let Some(a) = self.world.audit.as_deref_mut() {
                        a.on_deliver(pkt.uid);
                    }
                    if pkt.is_data() {
                        self.world
                            .stats
                            .record_flow_rx(pkt.flow, self.world.now, pkt.size);
                    }
                    self.world.trace(TraceKind::Deliver { node }, &pkt);
                    let agent = pkt.dst_agent;
                    self.dispatch(agent, |a, ctx| a.on_packet(pkt, ctx));
                } else {
                    self.world.forward(node, packet);
                }
            }
            EventKind::AgentTimer { agent, token } => {
                let armed_before = self.world.audit.as_deref_mut().map(|a| {
                    a.on_timer_fired(agent);
                    a.timers_armed_of(agent)
                });
                self.dispatch(agent, |a, ctx| a.on_timer(token, ctx));
                if let Some(before) = armed_before {
                    self.audit_check_timer_leak(agent, before);
                }
            }
            EventKind::AgentStart { agent } => {
                self.dispatch(agent, |a, ctx| a.on_start(ctx));
            }
            EventKind::FaultRelease { link, packet, held } => {
                if held {
                    self.world.links[link.index()]
                        .faults
                        .as_mut()
                        .expect("FaultRelease on a link without faults")
                        .on_release();
                }
                self.world.admit_to_link(link, packet);
            }
        }
    }

    /// After a timer callback: if the agent re-armed a timer while
    /// reporting itself done, it will tick forever — flag the leak.
    fn audit_check_timer_leak(&mut self, agent: AgentId, armed_before: u64) {
        let now = self.world.now;
        let Some(a) = self.world.audit.as_deref_mut() else {
            return;
        };
        if a.timers_armed_of(agent) <= armed_before {
            return;
        }
        let done = self.agents[agent.index()]
            .agent
            .as_deref()
            .is_some_and(|ag| ag.audit_done(now));
        if done {
            self.world
                .audit
                .as_deref_mut()
                .expect("audit checked above")
                .on_timer_leak(agent, now);
        }
    }

    fn dispatch<F>(&mut self, id: AgentId, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut Ctx<'_>),
    {
        let slot = self
            .agents
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("dispatch to unknown agent {id}"));
        let node = slot.node;
        let mut agent = slot
            .agent
            .take()
            .unwrap_or_else(|| panic!("dispatch to uninstalled agent {id}"));
        let mut ctx = Ctx {
            world: &mut self.world,
            agent_id: id,
            node,
        };
        f(agent.as_mut(), &mut ctx);
        self.agents[id.index()].agent = Some(agent);
    }

    /// Immutable access to an installed agent, for post-run inspection.
    /// Panics while that agent is being dispatched.
    pub fn agent(&self, id: AgentId) -> &dyn Agent {
        self.agents[id.index()]
            .agent
            .as_deref()
            .expect("agent not installed or currently running")
    }

    /// Inspect an installed agent as a concrete type, if it opted into
    /// [`Agent::as_any`].
    pub fn agent_downcast<T: 'static>(&self, id: AgentId) -> Option<&T> {
        self.agent(id).as_any().and_then(|a| a.downcast_ref::<T>())
    }
}

impl Drop for Simulator {
    /// Audited simulators that were never [`Self::finish_audit`]ed still
    /// run the teardown checks and contribute to the global report. When
    /// the thread is already panicking the auditor is downgraded to
    /// [`AuditMode::Collect`] so a strict-mode teardown never
    /// double-panics.
    fn drop(&mut self) {
        if let Some(mut auditor) = self.world.audit.take() {
            if std::thread::panicking() {
                auditor.set_collect();
            }
            let report = Self::audit_teardown(&mut auditor, &self.world);
            audit::merge_global(&report);
        }
    }
}

/// The world handle passed to agent callbacks.
pub struct Ctx<'a> {
    world: &'a mut World,
    agent_id: AgentId,
    node: NodeId,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Id of the running agent.
    pub fn agent_id(&self) -> AgentId {
        self.agent_id
    }

    /// Node the running agent is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Seeded RNG shared by the whole simulation.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.world.rng
    }

    /// Transmit a packet from this agent's node. Data payloads are
    /// accounted to the flow's sending-rate statistics; ACKs are not.
    pub fn send(&mut self, spec: PacketSpec) {
        let uid = self.world.next_uid;
        self.world.next_uid += 1;
        let pkt = Packet {
            uid,
            flow: spec.flow,
            seq: spec.seq,
            size: spec.size,
            payload: spec.payload,
            src_node: self.node,
            dst_node: spec.dst_node,
            src_agent: self.agent_id,
            dst_agent: spec.dst_agent,
            sent_at: self.world.now,
            ecn: spec.ecn,
        };
        if matches!(pkt.payload, Payload::Data(_)) {
            self.world
                .stats
                .record_flow_tx(pkt.flow, self.world.now, pkt.size);
        }
        self.world.trace(TraceKind::Send, &pkt);
        if let Some(a) = self.world.audit.as_deref_mut() {
            a.on_inject(uid);
        }
        let local = pkt.dst_node == self.node;
        let id = self.world.pool.insert(pkt);
        if local {
            // Local delivery: still goes through the event queue so the
            // receiving agent runs after the current callback returns.
            let node = self.node;
            self.world
                .queue
                .schedule(self.world.now, EventKind::Arrive { node, packet: id });
        } else {
            self.world.forward(self.node, id);
        }
    }

    /// Schedule `token` to be handed back to this agent after `delay`.
    ///
    /// Timers cannot be cancelled; agents keep a generation counter in the
    /// token and ignore stale generations.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        if let Some(a) = self.world.audit.as_deref_mut() {
            a.on_timer_armed(self.agent_id);
        }
        self.world.queue.schedule(
            self.world.now + delay,
            EventKind::AgentTimer {
                agent: self.agent_id,
                token,
            },
        );
    }

    /// Buffer occupancy of a link, for instrumentation agents.
    pub fn link_queue_len(&self, link: LinkId) -> usize {
        self.world.links[link.index()].queue_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::AckInfo;
    use crate::queue::DropTail;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Sends `count` data packets of `size` bytes back-to-back at start.
    struct Blaster {
        flow: FlowId,
        dst_node: NodeId,
        dst_agent: AgentId,
        count: u64,
        size: u32,
    }

    impl Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for seq in 0..self.count {
                ctx.send(PacketSpec::data(
                    self.flow,
                    seq,
                    self.size,
                    self.dst_node,
                    self.dst_agent,
                ));
            }
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
    }

    /// Counts data deliveries and acks each one.
    struct CountingSink {
        received: Arc<AtomicU64>,
        acks: bool,
    }

    impl Agent for CountingSink {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            if pkt.is_data() {
                self.received.fetch_add(1, Ordering::Relaxed);
                if self.acks {
                    let info = AckInfo::cumulative(pkt.seq + 1, pkt.seq, pkt.sent_at);
                    ctx.send(PacketSpec::ack_to(&pkt, 40, info));
                }
            }
        }
    }

    /// Two nodes joined by a pair of links.
    fn two_node_world(
        seed: u64,
        rate_bps: f64,
        delay: SimDuration,
        qcap: usize,
    ) -> (Simulator, NodeId, NodeId) {
        two_node_world_with(seed, || Box::new(DropTail::new(qcap)), rate_bps, delay)
    }

    /// Two nodes joined by a pair of links with a custom discipline.
    fn two_node_world_with(
        seed: u64,
        mut queue: impl FnMut() -> Box<dyn crate::queue::QueueDiscipline>,
        rate_bps: f64,
        delay: SimDuration,
    ) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(seed);
        let a = sim.add_node();
        let b = sim.add_node();
        let ab = sim.add_link(a, Link::new(b, rate_bps, delay, queue()));
        let ba = sim.add_link(b, Link::new(a, rate_bps, delay, queue()));
        sim.set_default_route(a, ab);
        sim.set_default_route(b, ba);
        (sim, a, b)
    }

    #[test]
    fn packets_arrive_after_serialization_plus_propagation() {
        // 1000 B at 8 Mb/s = 1 ms serialization; 10 ms propagation.
        let (mut sim, a, b) = two_node_world(1, 8e6, SimDuration::from_millis(10), 100);
        let received = Arc::new(AtomicU64::new(0));
        let sink = sim.add_agent(
            b,
            Box::new(CountingSink {
                received: received.clone(),
                acks: false,
            }),
        );
        let flow = sim.new_flow();
        sim.add_agent(
            a,
            Box::new(Blaster {
                flow,
                dst_node: b,
                dst_agent: sink,
                count: 1,
                size: 1000,
            }),
        );
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(received.load(Ordering::Relaxed), 0, "too early");
        sim.run_until(SimTime::from_millis(12));
        assert_eq!(received.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn back_to_back_packets_serialize_sequentially() {
        let (mut sim, a, b) = two_node_world(1, 8e6, SimDuration::from_millis(1), 100);
        let received = Arc::new(AtomicU64::new(0));
        let sink = sim.add_agent(
            b,
            Box::new(CountingSink {
                received: received.clone(),
                acks: false,
            }),
        );
        let flow = sim.new_flow();
        sim.add_agent(
            a,
            Box::new(Blaster {
                flow,
                dst_node: b,
                dst_agent: sink,
                count: 10,
                size: 1000,
            }),
        );
        // Last packet finishes serializing at 10 ms, arrives at 11 ms.
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(received.load(Ordering::Relaxed), 9);
        sim.run_until(SimTime::from_millis(11));
        assert_eq!(received.load(Ordering::Relaxed), 10);
        assert_eq!(sim.stats().flow(flow).unwrap().total_rx_packets, 10);
    }

    #[test]
    fn queue_overflow_drops_are_counted() {
        // Queue of 4: burst of 10 -> 1 in service + 4 queued, 5 dropped.
        let (mut sim, a, b) = two_node_world(1, 8e6, SimDuration::from_millis(1), 4);
        let received = Arc::new(AtomicU64::new(0));
        let sink = sim.add_agent(
            b,
            Box::new(CountingSink {
                received: received.clone(),
                acks: false,
            }),
        );
        let flow = sim.new_flow();
        sim.add_agent(
            a,
            Box::new(Blaster {
                flow,
                dst_node: b,
                dst_agent: sink,
                count: 10,
                size: 1000,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(received.load(Ordering::Relaxed), 5);
        let link = LinkId::from_index(0);
        assert_eq!(sim.stats().link(link).unwrap().total_drops, 5);
        assert_eq!(sim.stats().link(link).unwrap().total_arrivals, 10);
    }

    #[test]
    fn acks_flow_back_and_are_not_counted_as_data() {
        let (mut sim, a, b) = two_node_world(1, 8e6, SimDuration::from_millis(1), 100);
        let received = Arc::new(AtomicU64::new(0));
        let sink = sim.add_agent(
            b,
            Box::new(CountingSink {
                received: received.clone(),
                acks: true,
            }),
        );
        let flow = sim.new_flow();
        sim.add_agent(
            a,
            Box::new(Blaster {
                flow,
                dst_node: b,
                dst_agent: sink,
                count: 3,
                size: 1000,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let f = sim.stats().flow(flow).unwrap();
        // tx/rx statistics count data packets only.
        assert_eq!(f.total_tx_bytes, 3000);
        assert_eq!(f.total_rx_bytes, 3000);
        assert_eq!(f.total_rx_packets, 3);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        // RED draws from the simulator RNG on every enqueue, so the run's
        // outcome genuinely depends on the seed (with DropTail any two
        // seeds would agree trivially and the test would check nothing).
        let run = |seed: u64| -> (u64, u64) {
            use crate::queue::{Red, RedConfig};
            let red = || -> Box<dyn crate::queue::QueueDiscipline> {
                Box::new(Red::new(RedConfig {
                    capacity: 20,
                    min_thresh: 1.0,
                    max_thresh: 6.0,
                    max_p: 0.5,
                    weight: 0.5,
                    mean_pkt_time: SimDuration::from_micros(500),
                    gentle: false,
                    ecn: false,
                }))
            };
            let (mut sim, a, b) = two_node_world_with(seed, red, 8e6, SimDuration::from_millis(1));
            let received = Arc::new(AtomicU64::new(0));
            let sink = sim.add_agent(
                b,
                Box::new(CountingSink {
                    received: received.clone(),
                    acks: true,
                }),
            );
            let flow = sim.new_flow();
            sim.add_agent(
                a,
                Box::new(Blaster {
                    flow,
                    dst_node: b,
                    dst_agent: sink,
                    count: 50,
                    size: 500,
                }),
            );
            sim.run_until(SimTime::from_secs(2));
            let f = sim.stats().flow(flow).unwrap();
            (f.total_rx_packets, f.total_rx_bytes)
        };
        assert_eq!(run(7), run(7), "same seed must reproduce bit-identically");
        assert_ne!(
            run(7),
            run(8),
            "distinct seeds should produce distinct RED drop patterns"
        );
    }

    /// Installing a trace sink must observe the simulation, not perturb
    /// it: the untraced hot path skips the per-packet trace snapshot, and
    /// this pins down that the skip is invisible in the statistics.
    #[test]
    fn tracing_does_not_alter_simulation_outcomes() {
        let run = |traced: bool| -> (u64, u64, u64) {
            use crate::queue::{Red, RedConfig};
            let red = || -> Box<dyn crate::queue::QueueDiscipline> {
                Box::new(Red::new(RedConfig {
                    capacity: 20,
                    min_thresh: 1.0,
                    max_thresh: 6.0,
                    max_p: 0.5,
                    weight: 0.5,
                    mean_pkt_time: SimDuration::from_micros(500),
                    gentle: false,
                    ecn: false,
                }))
            };
            let (mut sim, a, b) = two_node_world_with(9, red, 8e6, SimDuration::from_millis(1));
            if traced {
                sim.set_trace(Box::new(crate::trace::VecTrace::new(100_000)));
            }
            let received = Arc::new(AtomicU64::new(0));
            let sink = sim.add_agent(
                b,
                Box::new(CountingSink {
                    received: received.clone(),
                    acks: true,
                }),
            );
            let flow = sim.new_flow();
            sim.add_agent(
                a,
                Box::new(Blaster {
                    flow,
                    dst_node: b,
                    dst_agent: sink,
                    count: 50,
                    size: 500,
                }),
            );
            sim.run_until(SimTime::from_secs(2));
            let f = sim.stats().flow(flow).unwrap();
            let drops = sim.stats().link(LinkId::from_index(0)).unwrap().total_drops;
            (f.total_rx_packets, f.total_rx_bytes, drops)
        };
        let untraced = run(false);
        assert_eq!(untraced, run(true), "trace sink changed the outcome");
        assert!(untraced.2 > 0, "scenario should exercise RED drops");
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        struct TimerAgent {
            fired: Arc<AtomicU64>,
        }
        impl Agent for TimerAgent {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_>) {
                // Tokens must arrive in time order: 1 then 2.
                let prev = self.fired.fetch_add(1, Ordering::Relaxed);
                assert_eq!(prev + 1, token);
            }
        }
        let mut sim = Simulator::new(0);
        let n = sim.add_node();
        let fired = Arc::new(AtomicU64::new(0));
        sim.add_agent(
            n,
            Box::new(TimerAgent {
                fired: fired.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn run_until_advances_clock_to_horizon() {
        let mut sim = Simulator::new(0);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let mut sim = Simulator::new(0);
        let a = sim.add_node();
        let b = sim.add_node();
        let flow = sim.new_flow();
        let sink_id = sim.reserve_agent(b);
        sim.add_agent(
            a,
            Box::new(Blaster {
                flow,
                dst_node: b,
                dst_agent: sink_id,
                count: 1,
                size: 100,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
    }
}
