//! The simulator: arenas for nodes, links and agents, the event loop, and
//! the [`Ctx`] handle through which agents interact with the network.
//!
//! # Model
//!
//! * **Agents** are protocol endpoints or traffic sources attached to a
//!   node. They are inert state machines driven by three callbacks:
//!   [`Agent::on_start`], [`Agent::on_packet`] and [`Agent::on_timer`].
//!   They never block and they never run concurrently; all interaction
//!   with the world goes through the [`Ctx`] passed to each callback.
//! * **Packets** sent via [`Ctx::send`] are routed hop by hop: each hop
//!   offers the packet to the outgoing link, which either drops it
//!   (scripted loss, early drop, buffer overflow) or serializes it at the
//!   link rate and delivers it after the propagation delay.
//! * **Timers** are fire-and-forget: [`Ctx::set_timer`] schedules a token
//!   that is handed back to the agent. There is no cancellation API;
//!   agents version their tokens and ignore stale ones (the discipline
//!   used by every agent in this workspace).
//!
//! # Determinism
//!
//! Runs are bit-for-bit reproducible for a given seed: the event queue
//! breaks timestamp ties by scheduling order, all arenas are index-based,
//! and all randomness comes from *per-entity* RNG streams — one per link
//! (consumed by its queue discipline) and one per agent (exposed via
//! [`Ctx::rng`]) — each derived from `(simulation seed, entity index)`
//! with a splitmix64 finalizer. Because an entity's draw sequence depends
//! only on the events *it* observes, the same seed reproduces the same
//! run regardless of how the simulation is partitioned into shards.

use std::cell::OnceCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Barrier, Mutex, OnceLock};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::audit::{self, AuditMode, AuditReport, Auditor};
use crate::budget::{self, Budget, BudgetState};
use crate::event::{EventKind, EventQueue, SchedulerKind};
use crate::ids::{AgentId, FlowId, LinkId, NodeId};
use crate::link::Link;
use crate::node::Node;
use crate::packet::{Packet, PacketSpec, Payload};
use crate::pool::{PacketId, PacketPool};
use crate::queue::EnqueueResult;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::trace::{DropReason, TraceEvent, TraceKind, TraceSink};

/// A protocol endpoint or traffic source.
///
/// Implementations live in `slowcc-core` (congestion control agents) and
/// `slowcc-traffic` (CBR sources, flash crowds); tests implement ad-hoc
/// agents freely.
pub trait Agent: Send {
    /// Called once at the agent's scheduled start time.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when a packet addressed to this agent is delivered.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}

    /// Optional downcast hook so tests and experiment harnesses can
    /// inspect agent state after a run (`Some(self)` in implementations
    /// that opt in).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Whether this agent considers its work finished at `now` (flow
    /// completed, or past its scripted stop time). Only consulted by the
    /// audit layer: a done agent that re-arms a timer from its own timer
    /// callback is flagged as a timer leak, because it will tick forever.
    /// The default `false` opts out — agents without a notion of "done"
    /// are never flagged.
    fn audit_done(&self, _now: SimTime) -> bool {
        false
    }
}

struct AgentSlot {
    node: NodeId,
    /// Taken out while the agent runs so `Ctx` can borrow the world.
    agent: Option<Box<dyn Agent>>,
    /// The agent's private RNG stream (see [`Ctx::rng`]), seeded from
    /// `(simulation seed, agent index)`.
    rng: SmallRng,
}

/// Domain-separation tag for per-link RNG streams.
const LINK_RNG_TAG: u64 = 1;
/// Domain-separation tag for per-agent RNG streams.
const AGENT_RNG_TAG: u64 = 2;

/// Derive an entity seed from the simulation seed, a domain tag and the
/// entity's arena index (splitmix64 finalizer — cheap, well-mixed, and
/// stable across platforms).
fn mix_seed(seed: u64, tag: u64, index: usize) -> u64 {
    let mut z = seed
        ^ tag
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A packet crossing a shard boundary: everything the destination shard
/// needs to schedule the arrival exactly as the serial engine would have.
struct Transit {
    /// Arrival time at the destination node (serialization end + link
    /// propagation delay + fault jitter).
    time: SimTime,
    /// Source-shard clock when serialization completed — the timestamp
    /// the arrival would have carried as its scheduling time in a serial
    /// run, preserved so same-instant events sort identically.
    sched: SimTime,
    /// Destination node (the link's `dst`).
    node: NodeId,
    /// The packet itself, removed from the source shard's pool.
    pkt: Packet,
}

/// Cross-shard routing table and outboxes, present only on sharded
/// worlds (`None` costs the serial hot path one null check).
struct Xport {
    /// This world's shard index.
    my_shard: u32,
    /// Shard owning each link's *destination* node, index-aligned with
    /// the link arena. A serialization completing on a link whose
    /// destination lives elsewhere exports the packet instead of
    /// scheduling a local arrival.
    link_dst_shard: Vec<u32>,
    /// Per-destination-shard outboxes, drained into the global mailbox
    /// matrix at the end of each conservative window.
    outboxes: Vec<Vec<Transit>>,
}

/// Everything except the agents; borrowed mutably by [`Ctx`] while an
/// agent runs.
struct World {
    now: SimTime,
    queue: EventQueue,
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// All live packets; events and link buffers reference slots by
    /// [`PacketId`], so the hot path moves 4-byte ids, not packet bytes.
    pool: PacketPool,
    stats: Stats,
    next_uid: u64,
    /// High bits OR-ed into every uid this world mints (`shard << 48`),
    /// so uids stay globally unique across shards without coordination.
    /// Zero in serial mode, so single-shard uids are unchanged.
    uid_tag: u64,
    /// Cross-shard export state; `None` in serial mode.
    xport: Option<Box<Xport>>,
    trace: Option<Box<dyn TraceSink>>,
    /// Invariant auditor, when enabled (see [`crate::audit`]). Boxed so
    /// the disabled case costs one null check per hook.
    audit: Option<Box<Auditor>>,
    /// Cooperative execution budget, checked at batch boundaries (see
    /// [`crate::budget`]). Unarmed by default: one branch per batch.
    budget: BudgetState,
}

/// Record a trace event if a sink is installed. Free function (rather
/// than a `World` method) so hot paths that hold individual field
/// borrows of the world can still emit traces.
#[inline]
fn trace_event(
    trace: &mut Option<Box<dyn TraceSink>>,
    now: SimTime,
    kind: TraceKind,
    pkt: &Packet,
) {
    if let Some(sink) = trace.as_mut() {
        sink.record(&TraceEvent::new(now, kind, pkt));
    }
}

impl World {
    #[inline]
    fn trace(&mut self, kind: TraceKind, pkt: &Packet) {
        trace_event(&mut self.trace, self.now, kind, pkt);
    }
}

impl World {
    /// Offer `pkt` to `link`: run the fault pre-stage (duplication and
    /// hold-for-reorder, see [`crate::faults`]), then admit the packet to
    /// the link proper.
    ///
    /// Duplicates and held packets re-enter through the event queue
    /// ([`EventKind::FaultRelease`]) and are then *admitted* directly —
    /// the pre-stage runs once per hop offer, so a duplicate is never
    /// re-duplicated and a held packet never re-held.
    fn offer_to_link(&mut self, link_id: LinkId, pkt: PacketId) {
        let now = self.now;
        if self.links[link_id.index()].faults.is_some() {
            let World {
                links,
                pool,
                stats,
                queue,
                trace,
                audit,
                next_uid,
                uid_tag,
                ..
            } = self;
            let link = &mut links[link_id.index()];
            let faults = link.faults.as_mut().expect("checked above");
            if faults.should_duplicate() {
                // The clone is a brand-new packet as far as the books are
                // concerned: fresh uid, injected into the ledger, its own
                // pool slot. It joins the link behind the original via
                // the event queue's tie-break.
                let mut dup = *pool.get(pkt);
                dup.uid = *uid_tag | *next_uid;
                *next_uid += 1;
                stats.record_link_duplicate(link_id);
                if let Some(a) = audit.as_deref_mut() {
                    a.on_inject(dup.uid);
                }
                trace_event(trace, now, TraceKind::FaultDup { link: link_id }, &dup);
                let dup_id = pool.insert(dup);
                queue.schedule(
                    now,
                    EventKind::FaultRelease {
                        link: link_id,
                        packet: dup_id,
                        held: false,
                    },
                );
            }
            if let Some(hold) = faults.should_hold() {
                // Not an arrival yet: the link first sees the packet at
                // release time, so the conservation books stay balanced.
                stats.record_link_fault_held(link_id);
                trace_event(trace, now, TraceKind::FaultHold { link: link_id }, pool.get(pkt));
                queue.schedule(
                    now + hold,
                    EventKind::FaultRelease {
                        link: link_id,
                        packet: pkt,
                        held: true,
                    },
                );
                return;
            }
        }
        self.admit_to_link(link_id, pkt);
    }

    /// Admit `pkt` to `link`: run the loss script, then the queue
    /// discipline, then start serialization if the transmitter is idle.
    ///
    /// This is the hottest function in the simulator (every hop of every
    /// packet lands here), so the link is indexed once and held as a
    /// single borrow alongside disjoint borrows of the other world
    /// fields, instead of re-indexing `self.links` per access.
    fn admit_to_link(&mut self, link_id: LinkId, pkt: PacketId) {
        let now = self.now;
        let World {
            links,
            pool,
            stats,
            trace,
            audit,
            ..
        } = self;
        let link = &mut links[link_id.index()];
        stats.record_link_arrival(link_id, now, link.queue_len());
        if let Some(a) = audit.as_deref_mut() {
            a.on_link_arrival(link_id);
        }

        // Scripted outage: a down link blackholes everything offered to
        // it, accounted as ordinary link drops.
        if link.faults.as_mut().is_some_and(|f| f.is_down(now)) {
            stats.record_link_flap_drop(link_id, now);
            if let Some(a) = audit.as_deref_mut() {
                a.on_link_drop(link_id, pool.get(pkt).uid);
            }
            trace_event(
                trace,
                now,
                TraceKind::Drop {
                    link: link_id,
                    reason: DropReason::LinkDown,
                },
                pool.get(pkt),
            );
            pool.discard(pkt);
            return;
        }

        // Scripted loss first.
        if let Some(loss) = link.loss.as_mut() {
            if loss.should_drop(pool.get(pkt), now) {
                stats.record_link_drop(link_id, now);
                if let Some(a) = audit.as_deref_mut() {
                    a.on_link_drop(link_id, pool.get(pkt).uid);
                }
                trace_event(
                    trace,
                    now,
                    TraceKind::Drop {
                        link: link_id,
                        reason: DropReason::LossPattern,
                    },
                    pool.get(pkt),
                );
                pool.discard(pkt);
                return;
            }
        }
        // Scripted ECN marking next.
        if pool.get(pkt).ecn.is_capable() {
            let mut marked = false;
            if let Some(marker) = link.marker.as_mut() {
                marked = marker.should_mark(pool.get(pkt), now);
            }
            if marked {
                pool.get_mut(pkt).ecn = crate::packet::Ecn::Marked;
                stats.record_link_mark(link_id, now);
                trace_event(trace, now, TraceKind::Mark { link: link_id }, pool.get(pkt));
            }
        }
        trace_event(trace, now, TraceKind::Enqueue { link: link_id }, pool.get(pkt));

        // The buffer. The packet stays pooled whatever the discipline
        // decides, so the drop/mark outcomes trace straight from the pool
        // slot — no per-packet snapshot on either path.
        let busy = link.busy();
        let result = link.queue.enqueue(pkt, pool, now, &mut link.rng);
        match result {
            EnqueueResult::Enqueued | EnqueueResult::Marked => {
                if result == EnqueueResult::Marked {
                    stats.record_link_mark(link_id, now);
                    trace_event(trace, now, TraceKind::Mark { link: link_id }, pool.get(pkt));
                }
                if !busy {
                    // ns-2 style: the arriving packet traverses the
                    // (empty) discipline so RED's average sees it, then
                    // starts serializing immediately.
                    let next = link
                        .queue
                        .dequeue(now)
                        .expect("packet just enqueued must dequeue");
                    self.start_service(link_id, next);
                }
            }
            EnqueueResult::Dropped => {
                stats.record_link_drop(link_id, now);
                if let Some(a) = audit.as_deref_mut() {
                    a.on_link_drop(link_id, pool.get(pkt).uid);
                }
                trace_event(
                    trace,
                    now,
                    TraceKind::Drop {
                        link: link_id,
                        reason: DropReason::Queue,
                    },
                    pool.get(pkt),
                );
                pool.discard(pkt);
            }
        }
    }

    fn start_service(&mut self, link_id: LinkId, pkt: PacketId) {
        let link = &mut self.links[link_id.index()];
        debug_assert!(!link.busy(), "start_service on busy link");
        let tx = link.tx_time(self.pool.get(pkt).size);
        link.in_service = Some(pkt);
        self.queue
            .schedule(self.now + tx, EventKind::LinkTxComplete { link: link_id });
    }

    fn on_tx_complete(&mut self, link_id: LinkId) {
        let now = self.now;
        let World {
            links,
            pool,
            queue,
            stats,
            trace,
            audit,
            xport,
            ..
        } = self;
        let link = &mut links[link_id.index()];
        let pkt = link
            .in_service
            .take()
            .expect("TxComplete without a packet in flight");
        stats.record_link_tx(link_id, now, pool.get(pkt).size);
        if let Some(a) = audit.as_deref_mut() {
            a.on_link_departure(link_id, pool.get(pkt).size);
        }
        trace_event(trace, now, TraceKind::Dequeue { link: link_id }, pool.get(pkt));
        // Fault-layer delay jitter stretches this packet's propagation.
        let jitter = link
            .faults
            .as_mut()
            .map_or(SimDuration::ZERO, |f| f.jitter());
        let arrive_at = now + link.delay + jitter;
        let dst = link.dst;
        // Cross-shard hop: the packet leaves this shard's pool and rides
        // a transit record to the destination shard, which schedules the
        // arrival with the same (time, sched) stamp a serial run would
        // have used. The conservative window bound guarantees `arrive_at`
        // is beyond every shard's current window, so the import can never
        // violate causality.
        let mut exported = false;
        if let Some(x) = xport.as_deref_mut() {
            let to = x.link_dst_shard[link_id.index()];
            if to != x.my_shard {
                let p = pool.remove(pkt);
                if let Some(a) = audit.as_deref_mut() {
                    a.on_export(p.uid);
                }
                x.outboxes[to as usize].push(Transit {
                    time: arrive_at,
                    sched: now,
                    node: dst,
                    pkt: p,
                });
                exported = true;
            }
        }
        if !exported {
            queue.schedule(
                arrive_at,
                EventKind::Arrive {
                    node: dst,
                    packet: pkt,
                },
            );
        }
        // Pull the next packet, if any (`in_service` is already vacated).
        if let Some(next) = link.queue.dequeue(now) {
            self.start_service(link_id, next);
        }
    }

    /// Route `pkt` out of `node`, or panic on a routing hole (our
    /// topologies are static, so a missing route is a programming error
    /// worth failing loudly on).
    fn forward(&mut self, node: NodeId, pkt: PacketId) {
        let p = self.pool.get(pkt);
        let out = self.nodes[node.index()].route(p.dst_node).unwrap_or_else(|| {
            panic!(
                "no route from {node} to {} (flow {}, uid {})",
                p.dst_node, p.flow, p.uid
            )
        });
        self.offer_to_link(out, pkt);
    }
}

/// Process-wide programmatic shard-count override (0 = unset).
static SHARDS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The `SLOWCC_SHARDS` environment knob, read once per process.
static ENV_SHARDS: OnceLock<Option<usize>> = OnceLock::new();

/// Largest accepted shard count. Far above any sane host; the clamp just
/// bounds thread spawn on a typo'd `SLOWCC_SHARDS`.
const MAX_SHARDS: usize = 64;

/// Force every subsequently created [`Simulator`] to target `n` shards
/// (`None` restores the default resolution: environment, then 1).
/// Sharding is conservative-parallel and byte-deterministic: any shard
/// count reproduces the single-shard run bit-exactly, so this knob is a
/// pure performance lever. The *effective* shard count may be lower than
/// requested when the topology has fewer independent node clusters.
pub fn set_default_shards(n: Option<usize>) {
    let v = n.map_or(0, |n| n.clamp(1, MAX_SHARDS));
    SHARDS_OVERRIDE.store(v, AtomicOrdering::Relaxed);
}

/// The shard count new simulators target: the [`set_default_shards`]
/// override if set, else the `SLOWCC_SHARDS` environment variable, else 1
/// (serial).
pub fn default_shards() -> usize {
    match SHARDS_OVERRIDE.load(AtomicOrdering::Relaxed) {
        0 => ENV_SHARDS
            .get_or_init(|| match std::env::var("SLOWCC_SHARDS") {
                Ok(v) => match v.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n.min(MAX_SHARDS)),
                    _ => panic!("SLOWCC_SHARDS must be a positive integer, got `{v}`"),
                },
                Err(_) => None,
            })
            .unwrap_or(1),
        n => n,
    }
}

/// Bit position of the shard tag inside packet uids. The low 48 bits
/// are a per-shard counter (2^48 packets per shard per run is far beyond
/// any workload here); the high bits carry the minting shard.
const UID_TAG_SHIFT: u32 = 48;

/// One conservative-parallel shard: a full [`World`] (its own event
/// queue, packet pool, clock, statistics and auditor) plus the agents
/// whose nodes it owns. In serial mode the simulator is exactly one
/// shard and none of the cross-shard machinery engages.
struct Shard {
    world: World,
    agents: Vec<AgentSlot>,
    /// Reusable arena the event queue drains each timestamp batch into;
    /// owned here so steady-state batch dispatch never allocates.
    batch_buf: Vec<EventKind>,
}

/// The discrete-event network simulator.
///
/// # Sharded execution
///
/// When [`default_shards`] resolves above 1 (the `SLOWCC_SHARDS`
/// environment variable or [`set_default_shards`]), the first
/// [`Self::run_until`] *seals* the topology and partitions the nodes
/// into shard clusters: links with the maximum propagation delay are cut
/// edges, connected components become clusters, and clusters are packed
/// into at most the requested number of shards. Each shard then runs its
/// own event loop on its own thread, synchronized conservatively with
/// lookahead equal to the minimum cross-shard link delay. The partition,
/// the per-entity RNG streams and the `(time, sched, seq)` event order
/// make the sharded run byte-identical to the serial one — see DESIGN.md
/// §5h for the full contract.
pub struct Simulator {
    /// The shard arenas. Exactly one before sealing and in serial mode.
    shards: Vec<Shard>,
    /// Node index → owning shard; empty until sealed with >1 shard.
    node_shard: Vec<u32>,
    /// Link index → owning shard (the shard of the link's source node,
    /// which runs its queue and transmitter); empty until sealed with
    /// >1 shard.
    link_shard: Vec<u32>,
    /// Conservative lookahead: minimum propagation delay over cross-shard
    /// links. `None` until sealed with >1 shard (or when the partition
    /// has no cross-shard links at all, in which case windows run
    /// straight to the horizon).
    lookahead: Option<SimDuration>,
    /// Whether the topology has been sealed (first `run_until`).
    sealed: bool,
    /// Shard count requested at construction (resolved once, so a run is
    /// not affected by later knob changes).
    requested_shards: usize,
    /// The simulation seed: root of every per-entity RNG stream.
    seed: u64,
    next_flow: u32,
    /// Source node of each link, index-aligned with the link arena. The
    /// links themselves only store their destination; the sharding layer
    /// needs both endpoints to derive the topology partition.
    link_src: Vec<NodeId>,
    /// Lazily merged per-shard statistics (see [`Self::stats`]);
    /// invalidated by every `run_until`. Unused in serial mode.
    merged_stats: OnceCell<Stats>,
}

/// Default width of the statistics bins (10 ms: fine enough for the
/// paper's 0.2 s smoothness windows and 50 ms RTT-granularity metrics).
pub const DEFAULT_STATS_BIN: SimDuration = SimDuration::from_millis(10);

impl Simulator {
    /// A fresh simulator with the given RNG seed, on the process default
    /// event scheduler (see [`SchedulerKind::default_kind`]).
    pub fn new(seed: u64) -> Self {
        Simulator::with_stats_bin(seed, DEFAULT_STATS_BIN)
    }

    /// A fresh simulator with an explicit statistics bin width.
    pub fn with_stats_bin(seed: u64, bin: SimDuration) -> Self {
        Simulator {
            shards: vec![Shard {
                world: World {
                    now: SimTime::ZERO,
                    queue: EventQueue::new(),
                    nodes: Vec::new(),
                    links: Vec::new(),
                    pool: PacketPool::new(),
                    stats: Stats::new(bin),
                    next_uid: 0,
                    uid_tag: 0,
                    xport: None,
                    trace: None,
                    audit: audit::default_mode().map(|mode| Box::new(Auditor::new(mode))),
                    budget: BudgetState::new(budget::thread_budget()),
                },
                agents: Vec::new(),
                batch_buf: Vec::new(),
            }],
            node_shard: Vec::new(),
            link_shard: Vec::new(),
            lookahead: None,
            sealed: false,
            requested_shards: default_shards(),
            seed,
            next_flow: 0,
            link_src: Vec::new(),
            merged_stats: OnceCell::new(),
        }
    }

    /// A fresh simulator with the invariant auditor enabled in
    /// [`AuditMode::Strict`]: any violation of packet conservation,
    /// pool/ledger consistency, link accounting or timer discipline
    /// panics on the spot. See [`crate::audit`].
    pub fn with_audit(seed: u64) -> Self {
        Simulator::with_audit_mode(seed, AuditMode::Strict)
    }

    /// A fresh simulator with the invariant auditor enabled in `mode`.
    pub fn with_audit_mode(seed: u64, mode: AuditMode) -> Self {
        let mut sim = Simulator::new(seed);
        sim.shards[0].world.audit = Some(Box::new(Auditor::new(mode)));
        sim
    }

    /// Whether this simulator is running under the invariant auditor.
    pub fn audit_enabled(&self) -> bool {
        self.shards[0].world.audit.is_some()
    }

    /// Arm (or replace) this simulator's cooperative execution budget.
    /// The wall clock starts now. Call before the first `run_until`:
    /// a sealed (sharded) simulator keeps each shard's existing state.
    /// Overrides the thread default captured at construction
    /// ([`budget::set_thread_budget`]).
    pub fn set_budget(&mut self, budget: Budget) {
        self.assert_unsharded("set_budget");
        self.shards[0].world.budget = BudgetState::new(budget);
    }

    /// The armed budget (the thread default at construction unless
    /// [`Self::set_budget`] replaced it).
    pub fn budget(&self) -> Budget {
        self.shards[0].world.budget.budget()
    }

    /// Run the teardown audit (pool/ledger uid-set reconciliation, link
    /// conservation laws, timer accounting) and return the report. The
    /// report is also merged into the process-global accumulator read by
    /// [`audit::take_global_report`].
    ///
    /// On a sharded simulator every shard runs its own teardown and the
    /// per-shard reports fold into one (`sims == 1`, exactly like the
    /// serial report), with a final cross-shard reconciliation of the
    /// export/import ledgers — every packet handed off between shards
    /// must have been received exactly once.
    ///
    /// Returns `None` when auditing is off, and on the second call (the
    /// auditor is consumed). In [`AuditMode::Strict`] the teardown checks
    /// panic on the first violation. If never called, [`Drop`] runs the
    /// same teardown.
    pub fn finish_audit(&mut self) -> Option<AuditReport> {
        let mut auditors: Vec<Box<Auditor>> = self
            .shards
            .iter_mut()
            .filter_map(|s| s.world.audit.take())
            .collect();
        if auditors.is_empty() {
            return None;
        }
        let report = Self::audit_teardown_all(&mut auditors, &self.shards);
        audit::merge_global(&report);
        Some(report)
    }

    /// Tear down every shard's auditor and fold the reports: the single
    /// report of a serial run, or [`audit::merge_shard_reports`] (with
    /// the cross-shard handoff reconciliation) of a sharded one.
    fn audit_teardown_all(auditors: &mut [Box<Auditor>], shards: &[Shard]) -> AuditReport {
        let strict = auditors.iter().any(|a| a.is_strict());
        let mut parts = Vec::with_capacity(auditors.len());
        let mut exported = Vec::new();
        let mut imported = Vec::new();
        for (auditor, shard) in auditors.iter_mut().zip(shards) {
            parts.push(Self::audit_teardown(auditor, &shard.world));
            exported.extend(auditor.take_exported_log());
            imported.extend(auditor.take_imported_log());
        }
        if parts.len() == 1 {
            parts.pop().expect("one report")
        } else {
            audit::merge_shard_reports(parts, exported, imported, strict)
        }
    }

    fn audit_teardown(auditor: &mut Auditor, world: &World) -> AuditReport {
        let pool_live = world.pool.live_uids();
        let link_state: Vec<(usize, bool)> = world
            .links
            .iter()
            .map(|l| (l.queue_len(), l.busy()))
            .collect();
        auditor.finish(pool_live, &link_state, &world.stats)
    }

    /// Which event-scheduler backend this simulator runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.shards[0].world.queue.kind()
    }

    /// Number of events dispatched so far: everything ever scheduled
    /// minus what is still pending. Derived from the queue's sequence
    /// counter, so it costs nothing on the hot path. Summed over shards.
    pub fn events_processed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.world.queue.scheduled() - s.world.queue.len() as u64)
            .sum()
    }

    /// Number of packets injected so far (the uid counters summed over
    /// shards): every [`Ctx::send`] plus every fault-layer duplicate.
    pub fn packets_injected(&self) -> u64 {
        self.shards.iter().map(|s| s.world.next_uid).sum()
    }

    /// High-water mark of simultaneously in-flight packets — the packet
    /// pool slab sizes summed over shards. Exposed so tests can assert
    /// the pool recycles instead of growing per packet.
    pub fn packet_pool_capacity(&self) -> usize {
        self.shards.iter().map(|s| s.world.pool.capacity()).sum()
    }

    /// How many shards the topology sealed into: 1 before the first
    /// `run_until` and whenever sharding degraded to serial execution
    /// (single cluster, tracing enabled, …); otherwise the resolved
    /// partition size, at most [`set_default_shards`]' request.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Owning shard of `node`: 0 until sealed with more than one shard.
    fn shard_of_node(&self, node: NodeId) -> usize {
        if self.node_shard.is_empty() {
            0
        } else {
            self.node_shard[node.index()] as usize
        }
    }

    /// Panic guard for topology mutators: the node/link arenas are
    /// replicated per shard at seal time, so they cannot change after a
    /// sharded run has started. (Serial simulators stay mutable forever,
    /// exactly as before.)
    fn assert_unsharded(&self, what: &str) {
        assert!(
            self.shards.len() == 1,
            "cannot {what}: topology was sealed into {} shards by the first run_until",
            self.shards.len()
        );
    }

    /// Add a node (host or router).
    pub fn add_node(&mut self) -> NodeId {
        self.assert_unsharded("add a node");
        let world = &mut self.shards[0].world;
        world.nodes.push(Node::new());
        NodeId::from_index(world.nodes.len() - 1)
    }

    /// Add a unidirectional link from `src` and return its handle.
    /// Routing entries are installed separately via [`Self::add_route`]
    /// or [`Self::set_default_route`]. `src` also determines which shard
    /// owns the link (its queue and transmitter) under sharded execution.
    pub fn add_link(&mut self, src: NodeId, link: Link) -> LinkId {
        self.assert_unsharded("add a link");
        let mut link = link;
        let world = &mut self.shards[0].world;
        let id = LinkId::from_index(world.links.len());
        link.rng = SmallRng::seed_from_u64(mix_seed(self.seed, LINK_RNG_TAG, id.index()));
        world.links.push(link);
        self.link_src.push(src);
        world.stats.ensure_link(id);
        id
    }

    /// Install a per-destination route at `node`.
    pub fn add_route(&mut self, node: NodeId, dst: NodeId, link: LinkId) {
        self.assert_unsharded("add a route");
        self.shards[0].world.nodes[node.index()].add_route(dst, link);
    }

    /// Install the default route at `node`.
    pub fn set_default_route(&mut self, node: NodeId, link: LinkId) {
        self.assert_unsharded("set a default route");
        self.shards[0].world.nodes[node.index()].set_default_route(link);
    }

    /// Allocate a flow identifier for statistics accounting.
    pub fn new_flow(&mut self) -> FlowId {
        let id = FlowId::from_index(self.next_flow as usize);
        self.next_flow += 1;
        for shard in &mut self.shards {
            shard.world.stats.ensure_flow(id);
        }
        id
    }

    /// Reserve an agent id without installing the agent yet. Lets two
    /// endpoint agents refer to each other: reserve both ids, then build
    /// each agent with its peer's id and install with
    /// [`Self::install_agent`].
    pub fn reserve_agent(&mut self, node: NodeId) -> AgentId {
        let index = self.shards[0].agents.len();
        // Every shard records the slot (so node lookups work anywhere);
        // only the owning shard will ever hold the agent itself. The rng
        // is seeded identically everywhere — it is part of the slot, and
        // only the owner's copy is ever advanced.
        for shard in &mut self.shards {
            shard.agents.push(AgentSlot {
                node,
                agent: None,
                rng: SmallRng::seed_from_u64(mix_seed(self.seed, AGENT_RNG_TAG, index)),
            });
        }
        AgentId::from_index(index)
    }

    /// Install a previously reserved agent, to be started at `start`.
    pub fn install_agent(&mut self, id: AgentId, agent: Box<dyn Agent>, start: SimTime) {
        let owner = self.shard_of_node(self.shards[0].agents[id.index()].node);
        let shard = &mut self.shards[owner];
        let slot = &mut shard.agents[id.index()];
        assert!(slot.agent.is_none(), "agent {id} installed twice");
        slot.agent = Some(agent);
        shard
            .world
            .queue
            .schedule(start, EventKind::AgentStart { agent: id });
    }

    /// Add an agent at `node`, started at `start`.
    pub fn add_agent_at(&mut self, node: NodeId, agent: Box<dyn Agent>, start: SimTime) -> AgentId {
        let id = self.reserve_agent(node);
        self.install_agent(id, agent, start);
        id
    }

    /// Add an agent at `node`, started at time zero.
    pub fn add_agent(&mut self, node: NodeId, agent: Box<dyn Agent>) -> AgentId {
        self.add_agent_at(node, agent, SimTime::ZERO)
    }

    /// Install a trace sink receiving every packet event from now on.
    /// Tracing is off by default (full runs generate millions of
    /// events); install a filtered/capped sink for targeted debugging.
    ///
    /// A sink installed *before* the first run forces serial execution
    /// (traces are inherently a global event order); installing one
    /// after the topology already sealed into multiple shards panics.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.assert_unsharded("install a trace sink");
        self.shards[0].world.trace = Some(sink);
    }

    /// Remove and return the current trace sink (e.g. to read a
    /// [`crate::trace::VecTrace`] back after a run). Always `None` on a
    /// sharded simulator, which never traces.
    pub fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.shards[0].world.trace.take()
    }

    /// Current simulated time: the furthest shard clock (all equal at
    /// every `run_until` horizon).
    pub fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.world.now)
            .max()
            .expect("at least one shard")
    }

    /// Collected statistics. On a sharded simulator the per-shard
    /// statistics merge lazily (every counter is an exact `u64` sum, so
    /// the merge reproduces the serial run bit-for-bit); the merge is
    /// cached until the next `run_until`.
    pub fn stats(&self) -> &Stats {
        if self.shards.len() == 1 {
            return &self.shards[0].world.stats;
        }
        self.merged_stats.get_or_init(|| {
            let mut merged = Stats::new(self.shards[0].world.stats.bin_width());
            for shard in &self.shards {
                merged.absorb(&shard.world.stats);
            }
            merged
        })
    }

    /// Current buffer occupancy of `link` in packets.
    pub fn link_queue_len(&self, link: LinkId) -> usize {
        let shard = if self.link_shard.is_empty() {
            0
        } else {
            self.link_shard[link.index()] as usize
        };
        self.shards[shard].world.links[link.index()].queue_len()
    }

    /// Run until the event queue drains or `until` is reached, whichever
    /// comes first. The clock is left at `until` when the horizon is hit.
    ///
    /// The inner loop is *timestamp-batched*: one
    /// [`EventQueue::drain_batch`] extracts every event sharing the head
    /// timestamp into a reusable arena, the clock advances once, and the
    /// events dispatch back-to-back in `(time, sched, seq)` order — the
    /// exact order repeated single pops produce, so batching is a pure
    /// optimization (pinned by `tests/batch_equivalence.rs` at the queue
    /// level). The audit pool cross-check runs once per batch instead of
    /// once per event; with auditing off the hook is a single null check
    /// per batch.
    pub fn run_until(&mut self, until: SimTime) {
        self.seal();
        self.merged_stats = OnceCell::new();
        for shard in &mut self.shards {
            shard.world.stats.set_reserve_hint(until);
        }
        if self.shards.len() == 1 {
            self.shards[0].run_window(until);
        } else {
            self.run_windows_threaded(until);
        }
        for shard in &mut self.shards {
            if shard.world.now < until {
                shard.world.now = until;
            }
            // Pin the scheduling clock to the horizon so events scheduled
            // *between* runs carry the same `sched` stamp at every shard
            // count (each shard's clock otherwise stops at its own last
            // dispatched event).
            shard.world.queue.set_clock(until);
        }
    }

    /// First-`run_until` hook: resolve the shard partition. Every guard
    /// below degrades silently to serial execution — sharding is a pure
    /// optimization, never a behavior change, so a topology it cannot
    /// handle simply runs on the proven serial engine.
    fn seal(&mut self) {
        if self.sealed {
            return;
        }
        self.sealed = true;
        if self.requested_shards <= 1 {
            return;
        }
        {
            let world = &self.shards[0].world;
            if world.trace.is_some()           // traces need a global event order
                || world.links.is_empty()      // degenerate topology
                || world.now != SimTime::ZERO  // already stepped manually
                || !world.pool.is_empty()      // packets already in flight
                || world.next_uid != 0
            {
                return;
            }
        }

        // Partition: links carrying the maximum propagation delay are the
        // cut edges; union-find over all faster links yields clusters
        // that only communicate across max-delay links, so the
        // conservative lookahead equals that delay.
        let (nodes_len, links_len, dmax) = {
            let world = &self.shards[0].world;
            let dmax = world
                .links
                .iter()
                .map(Link::delay)
                .max()
                .expect("links checked non-empty");
            (world.nodes.len(), world.links.len(), dmax)
        };
        if dmax.is_zero() {
            return;
        }
        fn find(parent: &mut [u32], mut i: u32) -> u32 {
            while parent[i as usize] != i {
                parent[i as usize] = parent[parent[i as usize] as usize];
                i = parent[i as usize];
            }
            i
        }
        let mut parent: Vec<u32> = (0..nodes_len as u32).collect();
        let link_dst: Vec<NodeId> = self.shards[0].world.links.iter().map(Link::dst).collect();
        for (i, dst) in link_dst.iter().enumerate().take(links_len) {
            if self.shards[0].world.links[i].delay() < dmax {
                let a = find(&mut parent, self.link_src[i].index() as u32);
                let b = find(&mut parent, dst.index() as u32);
                if a != b {
                    parent[a as usize] = b;
                }
            }
        }
        // Dense cluster ids in first-seen (= min-node-id ascending) order.
        let mut cluster_id: Vec<u32> = vec![u32::MAX; nodes_len];
        let mut clusters: Vec<Vec<u32>> = Vec::new();
        let mut cluster_of_node: Vec<u32> = vec![0; nodes_len];
        for (node, slot) in cluster_of_node.iter_mut().enumerate() {
            let root = find(&mut parent, node as u32) as usize;
            let c = if cluster_id[root] == u32::MAX {
                cluster_id[root] = clusters.len() as u32;
                clusters.push(Vec::new());
                cluster_id[root]
            } else {
                cluster_id[root]
            };
            clusters[c as usize].push(node as u32);
            *slot = c;
        }
        if clusters.len() < 2 {
            return;
        }

        // Pack clusters into at most the requested number of shards:
        // biggest first (ties by min node id, i.e. cluster id) onto the
        // least-loaded bin (ties to the lowest bin) — fully determined by
        // the topology, never by the host.
        let nbins = self.requested_shards.min(clusters.len());
        let mut order: Vec<usize> = (0..clusters.len()).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(clusters[c].len()), c));
        let mut bin_load = vec![0usize; nbins];
        let mut bin_of_cluster = vec![0u32; clusters.len()];
        for c in order {
            let bin = (0..nbins).min_by_key(|&b| (bin_load[b], b)).expect("nbins > 0");
            bin_of_cluster[c] = bin as u32;
            bin_load[bin] += clusters[c].len();
        }
        self.node_shard = cluster_of_node
            .iter()
            .map(|&c| bin_of_cluster[c as usize])
            .collect();
        self.link_shard = self
            .link_src
            .iter()
            .map(|src| self.node_shard[src.index()])
            .collect();
        self.lookahead = (0..links_len)
            .filter(|&i| self.link_shard[i] != self.node_shard[link_dst[i].index()])
            .map(|i| self.shards[0].world.links[i].delay())
            .min();

        // Split the build world into per-shard worlds. Real links and
        // agents move to their owner; other shards get inert
        // placeholders so every arena keeps global indexing.
        let build = self.shards.pop().expect("exactly one shard before seal");
        let Shard {
            world: mut build_world,
            agents: build_agents,
            batch_buf,
        } = build;
        let mut link_slots: Vec<Option<Link>> = std::mem::take(&mut build_world.links)
            .into_iter()
            .map(Some)
            .collect();
        let mut agent_slots = build_agents;
        let audit_mode = build_world.audit.as_deref().map(Auditor::mode);
        let bin_width = build_world.stats.bin_width();
        let queue_kind = build_world.queue.kind();
        let link_dst_shard: Vec<u32> = link_dst
            .iter()
            .map(|dst| self.node_shard[dst.index()])
            .collect();
        let mut shards: Vec<Shard> = (0..nbins as u32)
            .map(|bin| {
                let links: Vec<Link> = (0..links_len)
                    .map(|i| {
                        if self.link_shard[i] == bin {
                            link_slots[i].take().expect("each link has one owner")
                        } else {
                            // Never transmits: nothing routes to a link the
                            // shard does not own.
                            Link::new(
                                NodeId::from_index(0),
                                f64::INFINITY,
                                SimDuration::ZERO,
                                Box::new(crate::queue::DropTail::new(0)),
                            )
                        }
                    })
                    .collect();
                let mut stats = Stats::new(bin_width);
                for i in 0..links_len {
                    stats.ensure_link(LinkId::from_index(i));
                }
                for f in 0..self.next_flow {
                    stats.ensure_flow(FlowId::from_index(f as usize));
                }
                let uid_tag = u64::from(bin) << UID_TAG_SHIFT;
                let agents: Vec<AgentSlot> = agent_slots
                    .iter_mut()
                    .map(|slot| AgentSlot {
                        node: slot.node,
                        rng: slot.rng.clone(),
                        agent: if self.node_shard[slot.node.index()] == bin {
                            slot.agent.take()
                        } else {
                            None
                        },
                    })
                    .collect();
                Shard {
                    world: World {
                        now: SimTime::ZERO,
                        queue: EventQueue::with_kind(queue_kind),
                        nodes: build_world.nodes.clone(),
                        links,
                        pool: PacketPool::new(),
                        stats,
                        next_uid: 0,
                        uid_tag,
                        xport: Some(Box::new(Xport {
                            my_shard: bin,
                            link_dst_shard: link_dst_shard.clone(),
                            outboxes: (0..nbins).map(|_| Vec::new()).collect(),
                        })),
                        trace: None,
                        audit: audit_mode.map(|mode| Box::new(Auditor::sharded(mode, uid_tag))),
                        budget: build_world.budget.replicate(),
                    },
                    agents,
                    batch_buf: Vec::new(),
                }
            })
            .collect();
        shards[0].batch_buf = batch_buf;

        // Re-route the events scheduled during construction (agent
        // starts, typically) to their owning shards, in global queue
        // order so per-shard relative order matches the serial queue.
        // All were scheduled at clock zero, so `schedule_from` zero
        // reproduces their `sched` stamps exactly.
        while let Some((time, kind)) = build_world.queue.pop() {
            let bin = match kind {
                EventKind::AgentStart { agent } | EventKind::AgentTimer { agent, .. } => {
                    self.node_shard[agent_slots[agent.index()].node.index()]
                }
                EventKind::LinkTxComplete { link } | EventKind::FaultRelease { link, .. } => {
                    self.link_shard[link.index()]
                }
                EventKind::Arrive { .. } => {
                    unreachable!("no packets exist before the first run_until")
                }
            };
            shards[bin as usize]
                .world
                .queue
                .schedule_from(SimTime::ZERO, time, kind);
        }
        self.shards = shards;
    }

    /// The conservative-parallel engine: one thread per shard, running
    /// barrier-synchronized windows until every queue drains or the
    /// horizon is reached.
    ///
    /// Each round: every shard publishes its next event time; the global
    /// minimum `t0` plus the lookahead bounds the window (exclusive — an
    /// import can land exactly at `t0 + lookahead`, so shards may only
    /// dispatch strictly earlier events); shards drain their windows and
    /// deposit cross-shard packets into per-(src, dst) mailboxes; after
    /// the barrier each shard folds its inbound mailboxes in ascending
    /// source-shard order, which fixes the merge order deterministically.
    ///
    /// A panicking shard (e.g. a strict-audit violation) poisons the
    /// round instead of deadlocking its siblings at the barrier: every
    /// thread re-checks the poison flag after every barrier crossing and
    /// unwinds, and the first panic payload is re-thrown on the caller's
    /// thread.
    fn run_windows_threaded(&mut self, until: SimTime) {
        let nshards = self.shards.len();
        let lookahead = self.lookahead;
        let barrier = Barrier::new(nshards);
        let next_times: Vec<AtomicU64> = (0..nshards).map(|_| AtomicU64::new(u64::MAX)).collect();
        // mailboxes[dst][src]: deposited under lock before the barrier,
        // drained by `dst` after it.
        let mailboxes: Vec<Vec<Mutex<Vec<Transit>>>> = (0..nshards)
            .map(|_| (0..nshards).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let poisoned = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for (idx, shard) in self.shards.iter_mut().enumerate() {
                let (barrier, next_times, mailboxes, poisoned, panic_payload) =
                    (&barrier, &next_times, &mailboxes, &poisoned, &panic_payload);
                scope.spawn(move || loop {
                    let next = shard
                        .world
                        .queue
                        .peek_time()
                        .map_or(u64::MAX, SimTime::as_nanos);
                    next_times[idx].store(next, AtomicOrdering::Relaxed);
                    barrier.wait();
                    if poisoned.load(AtomicOrdering::Relaxed) {
                        break;
                    }
                    // Every thread computes the same t0 from the same
                    // published slots, so they agree on termination.
                    let t0 = next_times
                        .iter()
                        .map(|t| t.load(AtomicOrdering::Relaxed))
                        .min()
                        .expect("at least one shard");
                    if t0 == u64::MAX || t0 > until.as_nanos() {
                        break;
                    }
                    let bound = match lookahead {
                        Some(l) => {
                            SimTime::from_nanos(until.as_nanos().min(t0 + l.as_nanos() - 1))
                        }
                        None => until,
                    };
                    // Mailbox locks tolerate std poisoning (a sibling
                    // panicked mid-append): the round is already marked
                    // poisoned and about to unwind everywhere, so the
                    // contents are never read.
                    fn lock<'m>(
                        m: &'m Mutex<Vec<Transit>>,
                    ) -> std::sync::MutexGuard<'m, Vec<Transit>> {
                        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
                    }
                    let round = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        shard.run_window(bound);
                        let xport = shard
                            .world
                            .xport
                            .as_deref_mut()
                            .expect("sharded worlds always have an export table");
                        for (dst, outbox) in xport.outboxes.iter_mut().enumerate() {
                            if !outbox.is_empty() {
                                lock(&mailboxes[dst][idx]).append(outbox);
                            }
                        }
                    }));
                    if let Err(payload) = round {
                        poisoned.store(true, AtomicOrdering::Relaxed);
                        let mut slot = panic_payload.lock().expect("panic payload lock");
                        slot.get_or_insert(payload);
                    }
                    barrier.wait();
                    if poisoned.load(AtomicOrdering::Relaxed) {
                        break;
                    }
                    // Deterministic merge: ascending source shard, each
                    // mailbox already in that source's send order. Also
                    // wrapped so a strict-audit panic here unwinds every
                    // shard at the next barrier instead of deadlocking.
                    let merged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        for mailbox in &mailboxes[idx] {
                            let mut inbox = lock(mailbox);
                            shard.import(&mut inbox);
                        }
                    }));
                    if let Err(payload) = merged {
                        poisoned.store(true, AtomicOrdering::Relaxed);
                        let mut slot = panic_payload.lock().expect("panic payload lock");
                        slot.get_or_insert(payload);
                    }
                });
            }
        });
        if let Some(payload) = panic_payload.into_inner().expect("panic payload lock") {
            std::panic::resume_unwind(payload);
        }
    }

    /// Process a single event on the serial engine. Returns `false` when
    /// the queue is empty. Panics on a sharded simulator (single-stepping
    /// has no meaning across concurrent shard clocks).
    pub fn step(&mut self) -> bool {
        self.assert_unsharded("single-step");
        let shard = &mut self.shards[0];
        let Some((time, kind)) = shard.world.queue.pop() else {
            return false;
        };
        shard.process(time, kind);
        true
    }

    /// Immutable access to an installed agent, for post-run inspection.
    /// Panics while that agent is being dispatched.
    pub fn agent(&self, id: AgentId) -> &dyn Agent {
        let owner = self.shard_of_node(self.shards[0].agents[id.index()].node);
        self.shards[owner].agents[id.index()]
            .agent
            .as_deref()
            .expect("agent not installed or currently running")
    }

    /// Inspect an installed agent as a concrete type, if it opted into
    /// [`Agent::as_any`].
    pub fn agent_downcast<T: 'static>(&self, id: AgentId) -> Option<&T> {
        self.agent(id).as_any().and_then(|a| a.downcast_ref::<T>())
    }
}

impl Shard {
    /// Drain every event with `time <= until` in `(time, sched, seq)`
    /// order, leaving the clock at the last dispatched event. The inner
    /// loop is *timestamp-batched*: one [`EventQueue::drain_batch`]
    /// extracts every event sharing the head timestamp into a reusable
    /// arena, the clock advances once, and the events dispatch
    /// back-to-back — the exact order repeated single pops produce, so
    /// batching is a pure optimization (pinned by
    /// `tests/batch_equivalence.rs` at the queue level). The audit pool
    /// cross-check runs once per batch instead of once per event; with
    /// auditing off the hook is a single null check per batch.
    fn run_window(&mut self, until: SimTime) {
        // The arena lives on `self` but is taken out for the loop so
        // `drain_batch` (which borrows the queue mutably) can fill it.
        // Handlers dispatched from the batch never see it: events they
        // schedule — even at the batch's own timestamp — carry larger
        // sequence numbers and are picked up by a later `drain_batch`.
        let mut buf = std::mem::take(&mut self.batch_buf);
        while let Some(time) = self.world.queue.drain_batch(until, &mut buf) {
            debug_assert!(time >= self.world.now, "event queue went backwards");
            self.world.now = time;
            // Cooperative budget check: integer counters per batch, the
            // wall clock and cancel flag at amortized cadence. A trip
            // unwinds with a `SimAbort` payload (see `crate::budget`).
            self.world.budget.on_batch(time, buf.len());
            for &kind in &buf {
                self.dispatch_event(kind);
            }
            // O(1) per-batch cross-check: pool live slots vs ledger.
            // Every handler leaves the two reconciled, so checking at
            // batch granularity loses no violations (see audit docs).
            let World { audit, pool, now, .. } = &mut self.world;
            if let Some(a) = audit.as_deref_mut() {
                a.check_pool(pool.len(), *now);
            }
        }
        self.batch_buf = buf;
    }

    /// Receive one source shard's cross-shard packets: re-pool each and
    /// schedule its arrival with the sender's original `sched` stamp, so
    /// the `(time, sched, seq)` order is exactly what the serial engine
    /// would have produced scheduling the same arrival locally.
    fn import(&mut self, inbound: &mut Vec<Transit>) {
        for transit in inbound.drain(..) {
            let uid = transit.pkt.uid;
            let packet = self.world.pool.insert(transit.pkt);
            if let Some(a) = self.world.audit.as_deref_mut() {
                a.on_import(uid);
            }
            self.world.queue.schedule_from(
                transit.sched,
                transit.time,
                EventKind::Arrive {
                    node: transit.node,
                    packet,
                },
            );
        }
    }

    /// Advance the clock to `time` and fire `kind`, with the audit
    /// cross-check at per-event granularity ([`Simulator::step`]).
    fn process(&mut self, time: SimTime, kind: EventKind) {
        debug_assert!(time >= self.world.now, "event queue went backwards");
        self.world.now = time;
        self.dispatch_event(kind);
        // O(1) per-event cross-check: pool live slots vs packet ledger.
        let World { audit, pool, now, .. } = &mut self.world;
        if let Some(a) = audit.as_deref_mut() {
            a.check_pool(pool.len(), *now);
        }
    }

    /// Fire `kind` at the already-advanced clock.
    fn dispatch_event(&mut self, kind: EventKind) {
        match kind {
            EventKind::LinkTxComplete { link } => self.world.on_tx_complete(link),
            EventKind::Arrive { node, packet } => {
                if self.world.pool.get(packet).dst_node == node {
                    // Delivery ends the packet's pooled life; the agent
                    // receives the value.
                    let pkt = self.world.pool.remove(packet);
                    if let Some(a) = self.world.audit.as_deref_mut() {
                        a.on_deliver(pkt.uid);
                    }
                    if pkt.is_data() {
                        self.world
                            .stats
                            .record_flow_rx(pkt.flow, self.world.now, pkt.size);
                    }
                    self.world.trace(TraceKind::Deliver { node }, &pkt);
                    let agent = pkt.dst_agent;
                    self.dispatch(agent, |a, ctx| a.on_packet(pkt, ctx));
                } else {
                    self.world.forward(node, packet);
                }
            }
            EventKind::AgentTimer { agent, token } => {
                let armed_before = self.world.audit.as_deref_mut().map(|a| {
                    a.on_timer_fired(agent);
                    a.timers_armed_of(agent)
                });
                self.dispatch(agent, |a, ctx| a.on_timer(token, ctx));
                if let Some(before) = armed_before {
                    self.audit_check_timer_leak(agent, before);
                }
            }
            EventKind::AgentStart { agent } => {
                self.dispatch(agent, |a, ctx| a.on_start(ctx));
            }
            EventKind::FaultRelease { link, packet, held } => {
                if held {
                    self.world.links[link.index()]
                        .faults
                        .as_mut()
                        .expect("FaultRelease on a link without faults")
                        .on_release();
                }
                self.world.admit_to_link(link, packet);
            }
        }
    }

    /// After a timer callback: if the agent re-armed a timer while
    /// reporting itself done, it will tick forever — flag the leak.
    fn audit_check_timer_leak(&mut self, agent: AgentId, armed_before: u64) {
        let now = self.world.now;
        let Some(a) = self.world.audit.as_deref_mut() else {
            return;
        };
        if a.timers_armed_of(agent) <= armed_before {
            return;
        }
        let done = self.agents[agent.index()]
            .agent
            .as_deref()
            .is_some_and(|ag| ag.audit_done(now));
        if done {
            self.world
                .audit
                .as_deref_mut()
                .expect("audit checked above")
                .on_timer_leak(agent, now);
        }
    }

    fn dispatch<F>(&mut self, id: AgentId, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut Ctx<'_>),
    {
        let slot = self
            .agents
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("dispatch to unknown agent {id}"));
        let node = slot.node;
        let mut agent = slot
            .agent
            .take()
            .unwrap_or_else(|| panic!("dispatch to uninstalled agent {id}"));
        let mut ctx = Ctx {
            world: &mut self.world,
            agent_id: id,
            node,
            rng: &mut slot.rng,
        };
        f(agent.as_mut(), &mut ctx);
        self.agents[id.index()].agent = Some(agent);
    }
}

impl Drop for Simulator {
    /// Audited simulators that were never [`Self::finish_audit`]ed still
    /// run the teardown checks and contribute to the global report. When
    /// the thread is already panicking the auditors are downgraded to
    /// [`AuditMode::Collect`] so a strict-mode teardown never
    /// double-panics.
    fn drop(&mut self) {
        let mut auditors: Vec<Box<Auditor>> = self
            .shards
            .iter_mut()
            .filter_map(|s| s.world.audit.take())
            .collect();
        if auditors.is_empty() {
            return;
        }
        if std::thread::panicking() {
            for auditor in &mut auditors {
                auditor.set_collect();
            }
        }
        let report = Self::audit_teardown_all(&mut auditors, &self.shards);
        audit::merge_global(&report);
    }
}

/// The world handle passed to agent callbacks.
pub struct Ctx<'a> {
    world: &'a mut World,
    agent_id: AgentId,
    node: NodeId,
    rng: &'a mut SmallRng,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Id of the running agent.
    pub fn agent_id(&self) -> AgentId {
        self.agent_id
    }

    /// Node the running agent is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This agent's private RNG stream, seeded from `(simulation seed,
    /// agent index)`. Draws depend only on this agent's own callback
    /// sequence, never on other agents' activity.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Transmit a packet from this agent's node. Data payloads are
    /// accounted to the flow's sending-rate statistics; ACKs are not.
    pub fn send(&mut self, spec: PacketSpec) {
        let uid = self.world.uid_tag | self.world.next_uid;
        self.world.next_uid += 1;
        let pkt = Packet {
            uid,
            flow: spec.flow,
            seq: spec.seq,
            size: spec.size,
            payload: spec.payload,
            src_node: self.node,
            dst_node: spec.dst_node,
            src_agent: self.agent_id,
            dst_agent: spec.dst_agent,
            sent_at: self.world.now,
            ecn: spec.ecn,
        };
        if matches!(pkt.payload, Payload::Data(_)) {
            self.world
                .stats
                .record_flow_tx(pkt.flow, self.world.now, pkt.size);
        }
        self.world.trace(TraceKind::Send, &pkt);
        if let Some(a) = self.world.audit.as_deref_mut() {
            a.on_inject(uid);
        }
        let local = pkt.dst_node == self.node;
        let id = self.world.pool.insert(pkt);
        if local {
            // Local delivery: still goes through the event queue so the
            // receiving agent runs after the current callback returns.
            let node = self.node;
            self.world
                .queue
                .schedule(self.world.now, EventKind::Arrive { node, packet: id });
        } else {
            self.world.forward(self.node, id);
        }
    }

    /// Schedule `token` to be handed back to this agent after `delay`.
    ///
    /// Timers cannot be cancelled; agents keep a generation counter in the
    /// token and ignore stale generations.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        if let Some(a) = self.world.audit.as_deref_mut() {
            a.on_timer_armed(self.agent_id);
        }
        self.world.queue.schedule(
            self.world.now + delay,
            EventKind::AgentTimer {
                agent: self.agent_id,
                token,
            },
        );
    }

    /// Buffer occupancy of a link, for instrumentation agents.
    pub fn link_queue_len(&self, link: LinkId) -> usize {
        self.world.links[link.index()].queue_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::AckInfo;
    use crate::queue::DropTail;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Sends `count` data packets of `size` bytes back-to-back at start.
    struct Blaster {
        flow: FlowId,
        dst_node: NodeId,
        dst_agent: AgentId,
        count: u64,
        size: u32,
    }

    impl Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for seq in 0..self.count {
                ctx.send(PacketSpec::data(
                    self.flow,
                    seq,
                    self.size,
                    self.dst_node,
                    self.dst_agent,
                ));
            }
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
    }

    /// Counts data deliveries and acks each one.
    struct CountingSink {
        received: Arc<AtomicU64>,
        acks: bool,
    }

    impl Agent for CountingSink {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            if pkt.is_data() {
                self.received.fetch_add(1, Ordering::Relaxed);
                if self.acks {
                    let info = AckInfo::cumulative(pkt.seq + 1, pkt.seq, pkt.sent_at);
                    ctx.send(PacketSpec::ack_to(&pkt, 40, info));
                }
            }
        }
    }

    /// Two nodes joined by a pair of links.
    fn two_node_world(
        seed: u64,
        rate_bps: f64,
        delay: SimDuration,
        qcap: usize,
    ) -> (Simulator, NodeId, NodeId) {
        two_node_world_with(seed, || Box::new(DropTail::new(qcap)), rate_bps, delay)
    }

    /// Two nodes joined by a pair of links with a custom discipline.
    fn two_node_world_with(
        seed: u64,
        mut queue: impl FnMut() -> Box<dyn crate::queue::QueueDiscipline>,
        rate_bps: f64,
        delay: SimDuration,
    ) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(seed);
        let a = sim.add_node();
        let b = sim.add_node();
        let ab = sim.add_link(a, Link::new(b, rate_bps, delay, queue()));
        let ba = sim.add_link(b, Link::new(a, rate_bps, delay, queue()));
        sim.set_default_route(a, ab);
        sim.set_default_route(b, ba);
        (sim, a, b)
    }

    #[test]
    fn packets_arrive_after_serialization_plus_propagation() {
        // 1000 B at 8 Mb/s = 1 ms serialization; 10 ms propagation.
        let (mut sim, a, b) = two_node_world(1, 8e6, SimDuration::from_millis(10), 100);
        let received = Arc::new(AtomicU64::new(0));
        let sink = sim.add_agent(
            b,
            Box::new(CountingSink {
                received: received.clone(),
                acks: false,
            }),
        );
        let flow = sim.new_flow();
        sim.add_agent(
            a,
            Box::new(Blaster {
                flow,
                dst_node: b,
                dst_agent: sink,
                count: 1,
                size: 1000,
            }),
        );
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(received.load(Ordering::Relaxed), 0, "too early");
        sim.run_until(SimTime::from_millis(12));
        assert_eq!(received.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn back_to_back_packets_serialize_sequentially() {
        let (mut sim, a, b) = two_node_world(1, 8e6, SimDuration::from_millis(1), 100);
        let received = Arc::new(AtomicU64::new(0));
        let sink = sim.add_agent(
            b,
            Box::new(CountingSink {
                received: received.clone(),
                acks: false,
            }),
        );
        let flow = sim.new_flow();
        sim.add_agent(
            a,
            Box::new(Blaster {
                flow,
                dst_node: b,
                dst_agent: sink,
                count: 10,
                size: 1000,
            }),
        );
        // Last packet finishes serializing at 10 ms, arrives at 11 ms.
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(received.load(Ordering::Relaxed), 9);
        sim.run_until(SimTime::from_millis(11));
        assert_eq!(received.load(Ordering::Relaxed), 10);
        assert_eq!(sim.stats().flow(flow).unwrap().total_rx_packets, 10);
    }

    #[test]
    fn queue_overflow_drops_are_counted() {
        // Queue of 4: burst of 10 -> 1 in service + 4 queued, 5 dropped.
        let (mut sim, a, b) = two_node_world(1, 8e6, SimDuration::from_millis(1), 4);
        let received = Arc::new(AtomicU64::new(0));
        let sink = sim.add_agent(
            b,
            Box::new(CountingSink {
                received: received.clone(),
                acks: false,
            }),
        );
        let flow = sim.new_flow();
        sim.add_agent(
            a,
            Box::new(Blaster {
                flow,
                dst_node: b,
                dst_agent: sink,
                count: 10,
                size: 1000,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(received.load(Ordering::Relaxed), 5);
        let link = LinkId::from_index(0);
        assert_eq!(sim.stats().link(link).unwrap().total_drops, 5);
        assert_eq!(sim.stats().link(link).unwrap().total_arrivals, 10);
    }

    #[test]
    fn acks_flow_back_and_are_not_counted_as_data() {
        let (mut sim, a, b) = two_node_world(1, 8e6, SimDuration::from_millis(1), 100);
        let received = Arc::new(AtomicU64::new(0));
        let sink = sim.add_agent(
            b,
            Box::new(CountingSink {
                received: received.clone(),
                acks: true,
            }),
        );
        let flow = sim.new_flow();
        sim.add_agent(
            a,
            Box::new(Blaster {
                flow,
                dst_node: b,
                dst_agent: sink,
                count: 3,
                size: 1000,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let f = sim.stats().flow(flow).unwrap();
        // tx/rx statistics count data packets only.
        assert_eq!(f.total_tx_bytes, 3000);
        assert_eq!(f.total_rx_bytes, 3000);
        assert_eq!(f.total_rx_packets, 3);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        // RED draws from the link's RNG stream (derived from the
        // simulation seed) on every enqueue, so the run's outcome
        // genuinely depends on the seed (with DropTail any two seeds
        // would agree trivially and the test would check nothing).
        let run = |seed: u64| -> (u64, u64, Vec<u64>) {
            use crate::queue::{Red, RedConfig};
            let red = || -> Box<dyn crate::queue::QueueDiscipline> {
                Box::new(Red::new(RedConfig {
                    capacity: 20,
                    min_thresh: 1.0,
                    max_thresh: 6.0,
                    max_p: 0.5,
                    weight: 0.5,
                    mean_pkt_time: SimDuration::from_micros(500),
                    gentle: false,
                    ecn: false,
                }))
            };
            let (mut sim, a, b) = two_node_world_with(seed, red, 8e6, SimDuration::from_millis(1));
            let received = Arc::new(AtomicU64::new(0));
            let sink = sim.add_agent(
                b,
                Box::new(CountingSink {
                    received: received.clone(),
                    acks: true,
                }),
            );
            let flow = sim.new_flow();
            // Staggered bursts keep RED's average queue inside the
            // probabilistic band repeatedly, so the drop pattern is
            // genuinely a function of the RNG stream (one instantaneous
            // burst would saturate into forced drops identically under
            // any seed).
            for burst in 0..10 {
                sim.add_agent_at(
                    a,
                    Box::new(Blaster {
                        flow,
                        dst_node: b,
                        dst_agent: sink,
                        count: 8,
                        size: 500,
                    }),
                    SimTime::from_millis(100 * burst),
                );
            }
            sim.run_until(SimTime::from_secs(2));
            let f = sim.stats().flow(flow).unwrap();
            let drops = sim.stats().link(LinkId::from_index(0)).unwrap().drops.clone();
            (f.total_rx_packets, f.total_rx_bytes, drops)
        };
        assert_eq!(run(7), run(7), "same seed must reproduce bit-identically");
        assert_ne!(
            run(7),
            run(8),
            "distinct seeds should produce distinct RED drop patterns"
        );
    }

    /// Installing a trace sink must observe the simulation, not perturb
    /// it: the untraced hot path skips the per-packet trace snapshot, and
    /// this pins down that the skip is invisible in the statistics.
    #[test]
    fn tracing_does_not_alter_simulation_outcomes() {
        let run = |traced: bool| -> (u64, u64, u64) {
            use crate::queue::{Red, RedConfig};
            let red = || -> Box<dyn crate::queue::QueueDiscipline> {
                Box::new(Red::new(RedConfig {
                    capacity: 20,
                    min_thresh: 1.0,
                    max_thresh: 6.0,
                    max_p: 0.5,
                    weight: 0.5,
                    mean_pkt_time: SimDuration::from_micros(500),
                    gentle: false,
                    ecn: false,
                }))
            };
            let (mut sim, a, b) = two_node_world_with(9, red, 8e6, SimDuration::from_millis(1));
            if traced {
                sim.set_trace(Box::new(crate::trace::VecTrace::new(100_000)));
            }
            let received = Arc::new(AtomicU64::new(0));
            let sink = sim.add_agent(
                b,
                Box::new(CountingSink {
                    received: received.clone(),
                    acks: true,
                }),
            );
            let flow = sim.new_flow();
            sim.add_agent(
                a,
                Box::new(Blaster {
                    flow,
                    dst_node: b,
                    dst_agent: sink,
                    count: 50,
                    size: 500,
                }),
            );
            sim.run_until(SimTime::from_secs(2));
            let f = sim.stats().flow(flow).unwrap();
            let drops = sim.stats().link(LinkId::from_index(0)).unwrap().total_drops;
            (f.total_rx_packets, f.total_rx_bytes, drops)
        };
        let untraced = run(false);
        assert_eq!(untraced, run(true), "trace sink changed the outcome");
        assert!(untraced.2 > 0, "scenario should exercise RED drops");
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        struct TimerAgent {
            fired: Arc<AtomicU64>,
        }
        impl Agent for TimerAgent {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_>) {
                // Tokens must arrive in time order: 1 then 2.
                let prev = self.fired.fetch_add(1, Ordering::Relaxed);
                assert_eq!(prev + 1, token);
            }
        }
        let mut sim = Simulator::new(0);
        let n = sim.add_node();
        let fired = Arc::new(AtomicU64::new(0));
        sim.add_agent(
            n,
            Box::new(TimerAgent {
                fired: fired.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn run_until_advances_clock_to_horizon() {
        let mut sim = Simulator::new(0);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    /// An agent whose timer loop never advances the clock: the livelock
    /// signature the budget's zero-advance bound exists to catch.
    struct ZeroAdvanceSpinner;

    impl Agent for ZeroAdvanceSpinner {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
    }

    fn catch_sim_abort(f: impl FnOnce()) -> crate::budget::SimAbort {
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .expect_err("budget should have tripped");
        *payload
            .downcast::<crate::budget::SimAbort>()
            .expect("payload should be a SimAbort")
    }

    #[test]
    fn livelock_budget_trips_a_zero_advance_timer_loop() {
        let mut sim = Simulator::new(0);
        let n = sim.add_node();
        sim.add_agent(n, Box::new(ZeroAdvanceSpinner));
        sim.set_budget(crate::budget::Budget::none().with_livelock_batches(10_000));
        let abort = catch_sim_abort(move || sim.run_until(SimTime::from_secs(1)));
        match abort {
            crate::budget::SimAbort::Livelock { at, batches } => {
                assert_eq!(at, SimTime::ZERO, "spinner never advanced the clock");
                assert_eq!(batches, 10_000);
            }
            other => panic!("expected a livelock abort, got {other:?}"),
        }
    }

    #[test]
    fn event_budget_trips_and_unwinds_through_run_until() {
        let (mut sim, a, b) = two_node_world(7, 8e6, SimDuration::from_millis(1), 100);
        let received = Arc::new(AtomicU64::new(0));
        let sink = sim.add_agent(b, Box::new(CountingSink { received, acks: true }));
        let flow = sim.new_flow();
        sim.add_agent(
            a,
            Box::new(Blaster {
                flow,
                dst_node: b,
                dst_agent: sink,
                count: 50,
                size: 1000,
            }),
        );
        sim.set_budget(crate::budget::Budget::none().with_max_events(20));
        let abort = catch_sim_abort(move || sim.run_until(SimTime::from_secs(10)));
        assert_eq!(abort, crate::budget::SimAbort::MaxEvents { limit: 20 });
    }

    #[test]
    fn armed_but_untripped_budget_changes_nothing() {
        let run = |arm: bool| {
            let (mut sim, a, b) = two_node_world(3, 8e6, SimDuration::from_millis(2), 20);
            let received = Arc::new(AtomicU64::new(0));
            let sink = sim.add_agent(
                b,
                Box::new(CountingSink {
                    received: received.clone(),
                    acks: true,
                }),
            );
            let flow = sim.new_flow();
            sim.add_agent(
                a,
                Box::new(Blaster {
                    flow,
                    dst_node: b,
                    dst_agent: sink,
                    count: 30,
                    size: 1000,
                }),
            );
            if arm {
                sim.set_budget(
                    crate::budget::Budget::none()
                        .with_wall_clock(std::time::Duration::from_secs(3600))
                        .with_max_events(u64::MAX)
                        .with_livelock_batches(crate::budget::Budget::DEFAULT_LIVELOCK_BATCHES)
                        .with_cancel(),
                );
            }
            sim.run_until(SimTime::from_secs(2));
            let f = sim.stats().flow(flow).unwrap();
            (f.total_rx_packets, f.total_rx_bytes, received.load(Ordering::Relaxed))
        };
        assert_eq!(run(false), run(true), "armed budget altered the simulation");
    }

    #[test]
    fn thread_default_budget_is_captured_at_construction() {
        crate::budget::set_thread_budget(crate::budget::Budget::none().with_max_events(20));
        let sim = Simulator::new(0);
        crate::budget::set_thread_budget(crate::budget::Budget::none());
        assert_eq!(sim.budget().max_events, Some(20));
        assert!(Simulator::new(0).budget().is_unlimited());
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let mut sim = Simulator::new(0);
        let a = sim.add_node();
        let b = sim.add_node();
        let flow = sim.new_flow();
        let sink_id = sim.reserve_agent(b);
        sim.add_agent(
            a,
            Box::new(Blaster {
                flow,
                dst_node: b,
                dst_agent: sink_id,
                count: 1,
                size: 100,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
    }
}
