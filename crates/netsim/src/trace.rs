//! Packet-level event tracing — the ns-2 trace-file equivalent.
//!
//! Tracing is opt-in ([`crate::sim::Simulator::set_trace`]) because a
//! full-scale run generates millions of events. Two sinks are provided:
//!
//! * [`VecTrace`] — collects events in memory (with an optional flow
//!   filter and a hard cap), for programmatic inspection in tests and
//!   tools;
//! * [`NsTextTrace`] — renders the classic ns-2 text format
//!   (`+`/`-`/`d`/`r` lines) into any `io::Write`, so existing trace
//!   tooling and eyeballs work unchanged.

use std::io::Write;

use crate::ids::{FlowId, LinkId, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A source handed the packet to the network.
    Send,
    /// The packet was offered to a link (ns-2 `+`: enqueue).
    Enqueue {
        /// The link involved.
        link: LinkId,
    },
    /// The packet finished serializing onto the wire (ns-2 `-`: dequeue).
    Dequeue {
        /// The link involved.
        link: LinkId,
    },
    /// The packet was dropped (ns-2 `d`).
    Drop {
        /// The link involved.
        link: LinkId,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// The packet was ECN-marked at the link.
    Mark {
        /// The link involved.
        link: LinkId,
    },
    /// The packet arrived at its destination agent (ns-2 `r`).
    Deliver {
        /// The destination node.
        node: NodeId,
    },
    /// The fault layer cloned the packet at the link; the event carries
    /// the duplicate (fresh uid), not the original.
    FaultDup {
        /// The link involved.
        link: LinkId,
    },
    /// The fault layer put the packet in the link's hold bay for
    /// reordering; it re-enters via the event queue later.
    FaultHold {
        /// The link involved.
        link: LinkId,
    },
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// A scripted loss pattern consumed it.
    LossPattern,
    /// The queue discipline rejected it (early drop or overflow).
    Queue,
    /// The link was inside a scripted outage window (see
    /// [`crate::faults::FlapWindow`]).
    LinkDown,
}

/// One trace record.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Transport sequence number.
    pub seq: u64,
    /// Globally unique packet id.
    pub uid: u64,
    /// Wire size in bytes.
    pub size: u32,
    /// True for data segments (false for ACKs).
    pub is_data: bool,
}

impl TraceEvent {
    pub(crate) fn new(time: SimTime, kind: TraceKind, pkt: &Packet) -> Self {
        TraceEvent {
            time,
            kind,
            flow: pkt.flow,
            seq: pkt.seq,
            uid: pkt.uid,
            size: pkt.size,
            is_data: pkt.is_data(),
        }
    }
}

/// Receives trace events as the simulation runs.
pub trait TraceSink: Send {
    /// Called once per event, in simulation order.
    fn record(&mut self, event: &TraceEvent);

    /// Downcast hook so a sink taken back from the simulator
    /// ([`crate::sim::Simulator::take_trace`]) can be read as its
    /// concrete type.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// In-memory trace with an optional flow filter and a hard cap (events
/// beyond the cap are counted but not stored).
#[derive(Debug)]
pub struct VecTrace {
    events: Vec<TraceEvent>,
    filter: Option<FlowId>,
    cap: usize,
    total_seen: u64,
}

impl VecTrace {
    /// Keep at most `cap` events.
    pub fn new(cap: usize) -> Self {
        VecTrace {
            events: Vec::new(),
            filter: None,
            cap,
            total_seen: 0,
        }
    }

    /// Only record events of one flow.
    pub fn for_flow(mut self, flow: FlowId) -> Self {
        self.filter = Some(flow);
        self
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of matching events seen, including ones beyond the cap.
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }
}

impl TraceSink for VecTrace {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn record(&mut self, event: &TraceEvent) {
        if let Some(f) = self.filter {
            if event.flow != f {
                return;
            }
        }
        self.total_seen += 1;
        if self.events.len() < self.cap {
            self.events.push(*event);
        }
    }
}

/// Renders ns-2-style text trace lines:
///
/// ```text
/// + 0.052314 link2 flow0 tcp 1000 seq 41 uid 97
/// d 0.052314 link2 flow0 tcp 1000 seq 41 uid 97 (queue)
/// r 0.077314 node5 flow0 tcp 1000 seq 41 uid 97
/// ```
pub struct NsTextTrace<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> NsTextTrace<W> {
    /// Write trace lines into `out`.
    pub fn new(out: W) -> Self {
        NsTextTrace { out }
    }

    /// Finish and return the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write + Send> TraceSink for NsTextTrace<W> {
    fn record(&mut self, e: &TraceEvent) {
        let proto = if e.is_data { "tcp" } else { "ack" };
        let tail = format!(
            "flow{} {} {} seq {} uid {}",
            e.flow.index(),
            proto,
            e.size,
            e.seq,
            e.uid
        );
        let res = match e.kind {
            TraceKind::Send => writeln!(self.out, "s {} src {tail}", e.time.as_secs_f64()),
            TraceKind::Enqueue { link } => writeln!(
                self.out,
                "+ {} link{} {tail}",
                e.time.as_secs_f64(),
                link.index()
            ),
            TraceKind::Dequeue { link } => writeln!(
                self.out,
                "- {} link{} {tail}",
                e.time.as_secs_f64(),
                link.index()
            ),
            TraceKind::Drop { link, reason } => writeln!(
                self.out,
                "d {} link{} {tail} ({})",
                e.time.as_secs_f64(),
                link.index(),
                match reason {
                    DropReason::LossPattern => "loss-pattern",
                    DropReason::Queue => "queue",
                    DropReason::LinkDown => "link-down",
                }
            ),
            TraceKind::Mark { link } => writeln!(
                self.out,
                "m {} link{} {tail}",
                e.time.as_secs_f64(),
                link.index()
            ),
            TraceKind::Deliver { node } => writeln!(
                self.out,
                "r {} node{} {tail}",
                e.time.as_secs_f64(),
                node.index()
            ),
            TraceKind::FaultDup { link } => writeln!(
                self.out,
                "D {} link{} {tail}",
                e.time.as_secs_f64(),
                link.index()
            ),
            TraceKind::FaultHold { link } => writeln!(
                self.out,
                "h {} link{} {tail}",
                e.time.as_secs_f64(),
                link.index()
            ),
        };
        // A failed trace write must not bring the simulation down; the
        // trace is observability, not state.
        let _ = res;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AgentId;
    use crate::packet::{DataInfo, Payload};

    fn pkt(uid: u64, flow: usize) -> Packet {
        Packet {
            uid,
            flow: FlowId::from_index(flow),
            seq: uid,
            size: 1000,
            payload: Payload::Data(DataInfo::default()),
            src_node: NodeId::from_index(0),
            dst_node: NodeId::from_index(1),
            src_agent: AgentId::from_index(0),
            dst_agent: AgentId::from_index(1),
            sent_at: SimTime::ZERO,
            ecn: Default::default(),
        }
    }

    #[test]
    fn vec_trace_filters_and_caps() {
        let mut t = VecTrace::new(2).for_flow(FlowId::from_index(1));
        for i in 0..5 {
            let p = pkt(i, (i % 2) as usize);
            t.record(&TraceEvent::new(
                SimTime::from_millis(i),
                TraceKind::Send,
                &p,
            ));
        }
        // Flow 1 events: uids 1, 3 -> both stored (cap 2); a third would
        // only bump the counter.
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.total_seen(), 2);
        assert!(t.events().iter().all(|e| e.flow == FlowId::from_index(1)));
    }

    #[test]
    fn ns_text_format_lines() {
        let mut t = NsTextTrace::new(Vec::new());
        let p = pkt(7, 0);
        t.record(&TraceEvent::new(
            SimTime::from_millis(52),
            TraceKind::Enqueue {
                link: LinkId::from_index(2),
            },
            &p,
        ));
        t.record(&TraceEvent::new(
            SimTime::from_millis(53),
            TraceKind::Drop {
                link: LinkId::from_index(2),
                reason: DropReason::Queue,
            },
            &p,
        ));
        let text = String::from_utf8(t.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("+ 0.052 link2"), "{}", lines[0]);
        assert!(lines[1].starts_with("d 0.053 link2"), "{}", lines[1]);
        assert!(lines[1].ends_with("(queue)"));
    }
}
