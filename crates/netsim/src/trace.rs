//! Packet-level event tracing — the ns-2 trace-file equivalent.
//!
//! Tracing is opt-in ([`crate::sim::Simulator::set_trace`]) because a
//! full-scale run generates millions of events. Four sinks are provided:
//!
//! * [`VecTrace`] — collects events in memory (with an optional flow
//!   filter and a hard cap), for programmatic inspection in tests and
//!   tools;
//! * [`NsTextTrace`] — renders the classic ns-2 text format
//!   (`+`/`-`/`d`/`r` lines) into any `io::Write`, so existing trace
//!   tooling and eyeballs work unchanged;
//! * [`StreamTrace`] — streams *windowed aggregates* (throughput,
//!   drops, queue occupancy per time bin) as JSONL or CSV rows into any
//!   `io::Write`, holding O(1) memory in packet count — the sink for
//!   million-packet runs and live tooling;
//! * [`WindowedStats`] — the same aggregation kept in memory
//!   (O(bins), still independent of packet count), for experiment
//!   cells that embed the time series in their output.

use std::io::Write;

use crate::audit::AuditMode;
use crate::ids::{FlowId, LinkId, NodeId};
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A source handed the packet to the network.
    Send,
    /// The packet was offered to a link (ns-2 `+`: enqueue).
    Enqueue {
        /// The link involved.
        link: LinkId,
    },
    /// The packet finished serializing onto the wire (ns-2 `-`: dequeue).
    Dequeue {
        /// The link involved.
        link: LinkId,
    },
    /// The packet was dropped (ns-2 `d`).
    Drop {
        /// The link involved.
        link: LinkId,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// The packet was ECN-marked at the link.
    Mark {
        /// The link involved.
        link: LinkId,
    },
    /// The packet arrived at its destination agent (ns-2 `r`).
    Deliver {
        /// The destination node.
        node: NodeId,
    },
    /// The fault layer cloned the packet at the link; the event carries
    /// the duplicate (fresh uid), not the original.
    FaultDup {
        /// The link involved.
        link: LinkId,
    },
    /// The fault layer put the packet in the link's hold bay for
    /// reordering; it re-enters via the event queue later.
    FaultHold {
        /// The link involved.
        link: LinkId,
    },
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// A scripted loss pattern consumed it.
    LossPattern,
    /// The queue discipline rejected it (early drop or overflow).
    Queue,
    /// The link was inside a scripted outage window (see
    /// [`crate::faults::FlapWindow`]).
    LinkDown,
}

/// One trace record.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Transport sequence number.
    pub seq: u64,
    /// Globally unique packet id.
    pub uid: u64,
    /// Wire size in bytes.
    pub size: u32,
    /// True for data segments (false for ACKs).
    pub is_data: bool,
}

impl TraceEvent {
    pub(crate) fn new(time: SimTime, kind: TraceKind, pkt: &Packet) -> Self {
        TraceEvent {
            time,
            kind,
            flow: pkt.flow,
            seq: pkt.seq,
            uid: pkt.uid,
            size: pkt.size,
            is_data: pkt.is_data(),
        }
    }
}

/// Receives trace events as the simulation runs.
pub trait TraceSink: Send {
    /// Called once per event, in simulation order.
    fn record(&mut self, event: &TraceEvent);

    /// Downcast hook so a sink taken back from the simulator
    /// ([`crate::sim::Simulator::take_trace`]) can be read as its
    /// concrete type.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// In-memory trace with an optional flow filter and a hard cap (events
/// beyond the cap are counted but not stored).
#[derive(Debug)]
pub struct VecTrace {
    events: Vec<TraceEvent>,
    filter: Option<FlowId>,
    cap: usize,
    total_seen: u64,
}

impl VecTrace {
    /// Keep at most `cap` events.
    pub fn new(cap: usize) -> Self {
        VecTrace {
            events: Vec::new(),
            filter: None,
            cap,
            total_seen: 0,
        }
    }

    /// Only record events of one flow.
    pub fn for_flow(mut self, flow: FlowId) -> Self {
        self.filter = Some(flow);
        self
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of matching events seen, including ones beyond the cap.
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Number of matching events dropped because the cap was full.
    pub fn truncated(&self) -> u64 {
        self.total_seen.saturating_sub(self.events.len() as u64)
    }

    /// True if any matching event was dropped.
    pub fn is_truncated(&self) -> bool {
        self.truncated() > 0
    }
}

impl TraceSink for VecTrace {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn record(&mut self, event: &TraceEvent) {
        if let Some(f) = self.filter {
            if event.flow != f {
                return;
            }
        }
        self.total_seen += 1;
        if self.events.len() < self.cap {
            self.events.push(*event);
        } else if crate::audit::default_mode() == Some(AuditMode::Strict) {
            // A silently truncated trace under a strict audit is a lie
            // waiting to be believed; fail the run instead.
            panic!(
                "VecTrace cap {} exceeded under strict audit (saw {} matching events); \
                 raise the cap or use a streaming sink (StreamTrace)",
                self.cap, self.total_seen
            );
        }
    }
}

/// Renders ns-2-style text trace lines:
///
/// ```text
/// + 0.052314 link2 flow0 tcp 1000 seq 41 uid 97
/// d 0.052314 link2 flow0 tcp 1000 seq 41 uid 97 (queue)
/// r 0.077314 node5 flow0 tcp 1000 seq 41 uid 97
/// ```
pub struct NsTextTrace<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> NsTextTrace<W> {
    /// Write trace lines into `out`.
    pub fn new(out: W) -> Self {
        NsTextTrace { out }
    }

    /// Finish and return the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write + Send> TraceSink for NsTextTrace<W> {
    fn record(&mut self, e: &TraceEvent) {
        let proto = if e.is_data { "tcp" } else { "ack" };
        let tail = format!(
            "flow{} {} {} seq {} uid {}",
            e.flow.index(),
            proto,
            e.size,
            e.seq,
            e.uid
        );
        let res = match e.kind {
            TraceKind::Send => writeln!(self.out, "s {} src {tail}", e.time.as_secs_f64()),
            TraceKind::Enqueue { link } => writeln!(
                self.out,
                "+ {} link{} {tail}",
                e.time.as_secs_f64(),
                link.index()
            ),
            TraceKind::Dequeue { link } => writeln!(
                self.out,
                "- {} link{} {tail}",
                e.time.as_secs_f64(),
                link.index()
            ),
            TraceKind::Drop { link, reason } => writeln!(
                self.out,
                "d {} link{} {tail} ({})",
                e.time.as_secs_f64(),
                link.index(),
                match reason {
                    DropReason::LossPattern => "loss-pattern",
                    DropReason::Queue => "queue",
                    DropReason::LinkDown => "link-down",
                }
            ),
            TraceKind::Mark { link } => writeln!(
                self.out,
                "m {} link{} {tail}",
                e.time.as_secs_f64(),
                link.index()
            ),
            TraceKind::Deliver { node } => writeln!(
                self.out,
                "r {} node{} {tail}",
                e.time.as_secs_f64(),
                node.index()
            ),
            TraceKind::FaultDup { link } => writeln!(
                self.out,
                "D {} link{} {tail}",
                e.time.as_secs_f64(),
                link.index()
            ),
            TraceKind::FaultHold { link } => writeln!(
                self.out,
                "h {} link{} {tail}",
                e.time.as_secs_f64(),
                link.index()
            ),
        };
        // A failed trace write must not bring the simulation down; the
        // trace is observability, not state.
        let _ = res;
    }
}

// ---------------------------------------------------------------------
// Windowed aggregation
// ---------------------------------------------------------------------

/// One aggregated time window: everything the stream sinks report per
/// bin. Bins are anchored at t = 0 and `width` wide; empty bins are
/// emitted too, so downstream tooling sees a regular time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceBin {
    /// Bin index (bin `i` covers `[i*width, (i+1)*width)`).
    pub index: u64,
    /// Packets handed to the network by sources.
    pub sends: u64,
    /// Link enqueues (ns-2 `+`).
    pub enqueues: u64,
    /// Link dequeues, i.e. packets fully serialized (ns-2 `-`).
    pub dequeues: u64,
    /// Packets delivered to destination agents.
    pub delivered_packets: u64,
    /// Bytes delivered to destination agents (throughput per bin).
    pub delivered_bytes: u64,
    /// Drops by scripted loss patterns.
    pub drops_loss: u64,
    /// Drops by queue disciplines (early drop or overflow).
    pub drops_queue: u64,
    /// Drops inside scripted link outages.
    pub drops_link_down: u64,
    /// ECN marks.
    pub marks: u64,
    /// Fault-layer duplications.
    pub fault_dups: u64,
    /// Fault-layer reorder holds.
    pub fault_holds: u64,
    /// Peak queued-or-in-service packets across all links in the bin.
    pub occupancy_max: i64,
    /// Queued-or-in-service packets at the end of the bin.
    pub occupancy_end: i64,
}

/// The shared binning engine behind [`StreamTrace`] and
/// [`WindowedStats`]: one open bin plus a global occupancy counter —
/// O(1) state in packet count.
///
/// Occupancy follows the simulator's event order: `Enqueue` fires
/// before the queue decision and a queue drop follows its own enqueue,
/// so occupancy is `+1` per enqueue, `-1` per dequeue and per
/// queue-reason drop. Loss-pattern and link-down drops happen before
/// any enqueue and leave occupancy untouched.
#[derive(Debug)]
struct BinState {
    width: SimDuration,
    current: TraceBin,
    occupancy: i64,
}

impl BinState {
    fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "bin width must be positive");
        BinState {
            width,
            current: TraceBin::default(),
            occupancy: 0,
        }
    }

    /// Fold one event in, emitting every bin it closes.
    fn feed(&mut self, e: &TraceEvent, emit: &mut dyn FnMut(&TraceBin)) {
        let index = e.time.as_nanos() / self.width.as_nanos();
        while self.current.index < index {
            self.current.occupancy_end = self.occupancy;
            emit(&self.current);
            self.current = TraceBin {
                index: self.current.index + 1,
                occupancy_max: self.occupancy,
                ..TraceBin::default()
            };
        }
        let bin = &mut self.current;
        match e.kind {
            TraceKind::Send => bin.sends += 1,
            TraceKind::Enqueue { .. } => {
                bin.enqueues += 1;
                self.occupancy += 1;
                bin.occupancy_max = bin.occupancy_max.max(self.occupancy);
            }
            TraceKind::Dequeue { .. } => {
                bin.dequeues += 1;
                self.occupancy -= 1;
            }
            TraceKind::Drop { reason, .. } => match reason {
                DropReason::LossPattern => bin.drops_loss += 1,
                DropReason::Queue => {
                    bin.drops_queue += 1;
                    self.occupancy -= 1;
                }
                DropReason::LinkDown => bin.drops_link_down += 1,
            },
            TraceKind::Mark { .. } => bin.marks += 1,
            TraceKind::Deliver { .. } => {
                bin.delivered_packets += 1;
                bin.delivered_bytes += e.size as u64;
            }
            TraceKind::FaultDup { .. } => bin.fault_dups += 1,
            TraceKind::FaultHold { .. } => bin.fault_holds += 1,
        }
    }

    /// The open (not yet emitted) bin, closed as of now.
    fn tail(&self) -> TraceBin {
        let mut bin = self.current;
        bin.occupancy_end = self.occupancy;
        bin
    }
}

/// In-memory windowed aggregation: O(bins) memory, independent of
/// packet count. Read the series back with [`WindowedStats::bins`]
/// after taking the sink from the simulator.
#[derive(Debug)]
pub struct WindowedStats {
    state: BinState,
    rows: Vec<TraceBin>,
}

impl WindowedStats {
    /// Aggregate into bins of `width`.
    pub fn new(width: SimDuration) -> Self {
        WindowedStats {
            state: BinState::new(width),
            rows: Vec::new(),
        }
    }

    /// The completed bins plus the open tail bin, in time order.
    pub fn bins(&self) -> Vec<TraceBin> {
        let mut rows = self.rows.clone();
        rows.push(self.state.tail());
        rows
    }
}

impl TraceSink for WindowedStats {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn record(&mut self, event: &TraceEvent) {
        let rows = &mut self.rows;
        self.state.feed(event, &mut |bin| rows.push(*bin));
    }
}

/// Output syntax of a [`StreamTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFormat {
    /// One JSON object per row, newline-delimited.
    Jsonl,
    /// A header line, then one comma-separated row per bin.
    Csv,
}

impl StreamFormat {
    /// Parse `"jsonl"` / `"csv"`.
    pub fn parse(s: &str) -> Option<StreamFormat> {
        match s {
            "jsonl" => Some(StreamFormat::Jsonl),
            "csv" => Some(StreamFormat::Csv),
            _ => None,
        }
    }
}

/// Column names of the streamed rows, in order.
pub const STREAM_COLUMNS: [&str; 15] = [
    "bin",
    "start_secs",
    "sends",
    "enqueues",
    "dequeues",
    "delivered_packets",
    "delivered_bytes",
    "drops_loss",
    "drops_queue",
    "drops_link_down",
    "marks",
    "fault_dups",
    "fault_holds",
    "occupancy_max",
    "occupancy_end",
];

/// Incremental windowed-aggregate sink: each completed bin is rendered
/// and written immediately, so memory stays O(1) in packet count no
/// matter how long the run is. Call [`StreamTrace::finish`] after the
/// run to flush the open tail bin and recover the writer.
pub struct StreamTrace<W: Write + Send> {
    out: W,
    format: StreamFormat,
    state: BinState,
    rows_written: u64,
}

impl<W: Write + Send> StreamTrace<W> {
    /// Stream bins of `width` into `out` as `format`. The CSV header
    /// is written up front.
    pub fn new(mut out: W, format: StreamFormat, width: SimDuration) -> Self {
        if format == StreamFormat::Csv {
            let _ = writeln!(out, "{}", STREAM_COLUMNS.join(","));
        }
        StreamTrace {
            out,
            format,
            state: BinState::new(width),
            rows_written: 0,
        }
    }

    /// Rows written so far (completed bins only).
    pub fn rows_written(&self) -> u64 {
        self.rows_written
    }

    /// Flush the open tail bin and return the writer.
    pub fn finish(mut self) -> W {
        let tail = self.state.tail();
        write_bin_row(&mut self.out, self.format, self.state.width, &tail);
        let _ = self.out.flush();
        self.out
    }
}

/// Render one aggregate bin as a JSONL or CSV row — the exact format
/// [`StreamTrace`] emits, exposed so post-hoc writers (e.g. experiment
/// `save` hooks replaying collected [`WindowedStats`] bins to a file)
/// produce byte-identical output to the live streaming sink.
pub fn write_bin_row<W: Write>(
    out: &mut W,
    format: StreamFormat,
    width: SimDuration,
    bin: &TraceBin,
) {
    let start_secs = (width * bin.index).as_secs_f64();
    let res = match format {
        StreamFormat::Jsonl => writeln!(
            out,
            "{{\"bin\":{},\"start_secs\":{:?},\"sends\":{},\"enqueues\":{},\"dequeues\":{},\
             \"delivered_packets\":{},\"delivered_bytes\":{},\"drops_loss\":{},\
             \"drops_queue\":{},\"drops_link_down\":{},\"marks\":{},\"fault_dups\":{},\
             \"fault_holds\":{},\"occupancy_max\":{},\"occupancy_end\":{}}}",
            bin.index,
            start_secs,
            bin.sends,
            bin.enqueues,
            bin.dequeues,
            bin.delivered_packets,
            bin.delivered_bytes,
            bin.drops_loss,
            bin.drops_queue,
            bin.drops_link_down,
            bin.marks,
            bin.fault_dups,
            bin.fault_holds,
            bin.occupancy_max,
            bin.occupancy_end,
        ),
        StreamFormat::Csv => writeln!(
            out,
            "{},{:?},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            bin.index,
            start_secs,
            bin.sends,
            bin.enqueues,
            bin.dequeues,
            bin.delivered_packets,
            bin.delivered_bytes,
            bin.drops_loss,
            bin.drops_queue,
            bin.drops_link_down,
            bin.marks,
            bin.fault_dups,
            bin.fault_holds,
            bin.occupancy_max,
            bin.occupancy_end,
        ),
    };
    // Same policy as NsTextTrace: a failed trace write must not bring
    // the simulation down.
    let _ = res;
}

impl<W: Write + Send> TraceSink for StreamTrace<W> {
    fn record(&mut self, event: &TraceEvent) {
        let out = &mut self.out;
        let format = self.format;
        let width = self.state.width;
        let rows_written = &mut self.rows_written;
        self.state.feed(event, &mut |bin| {
            write_bin_row(out, format, width, bin);
            *rows_written += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AgentId;
    use crate::packet::{DataInfo, Payload};

    fn pkt(uid: u64, flow: usize) -> Packet {
        Packet {
            uid,
            flow: FlowId::from_index(flow),
            seq: uid,
            size: 1000,
            payload: Payload::Data(DataInfo::default()),
            src_node: NodeId::from_index(0),
            dst_node: NodeId::from_index(1),
            src_agent: AgentId::from_index(0),
            dst_agent: AgentId::from_index(1),
            sent_at: SimTime::ZERO,
            ecn: Default::default(),
        }
    }

    #[test]
    fn vec_trace_filters_and_caps() {
        let mut t = VecTrace::new(2).for_flow(FlowId::from_index(1));
        for i in 0..5 {
            let p = pkt(i, (i % 2) as usize);
            t.record(&TraceEvent::new(
                SimTime::from_millis(i),
                TraceKind::Send,
                &p,
            ));
        }
        // Flow 1 events: uids 1, 3 -> both stored (cap 2); a third would
        // only bump the counter.
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.total_seen(), 2);
        assert!(t.events().iter().all(|e| e.flow == FlowId::from_index(1)));
    }

    #[test]
    fn ns_text_format_lines() {
        let mut t = NsTextTrace::new(Vec::new());
        let p = pkt(7, 0);
        t.record(&TraceEvent::new(
            SimTime::from_millis(52),
            TraceKind::Enqueue {
                link: LinkId::from_index(2),
            },
            &p,
        ));
        t.record(&TraceEvent::new(
            SimTime::from_millis(53),
            TraceKind::Drop {
                link: LinkId::from_index(2),
                reason: DropReason::Queue,
            },
            &p,
        ));
        let text = String::from_utf8(t.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("+ 0.052 link2"), "{}", lines[0]);
        assert!(lines[1].starts_with("d 0.053 link2"), "{}", lines[1]);
        assert!(lines[1].ends_with("(queue)"));
    }

    #[test]
    fn vec_trace_counts_truncation() {
        let mut t = VecTrace::new(2);
        for i in 0..5 {
            let p = pkt(i, 0);
            t.record(&TraceEvent::new(SimTime::from_millis(i), TraceKind::Send, &p));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.total_seen(), 5);
        assert_eq!(t.truncated(), 3);
        assert!(t.is_truncated());
    }

    fn ev(ms: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent::new(SimTime::from_millis(ms), kind, &pkt(ms, 0))
    }

    fn link(ix: usize) -> LinkId {
        LinkId::from_index(ix)
    }

    /// A small scripted event sequence spanning three 10 ms bins:
    /// an enqueue/dequeue/deliver in bin 0, a queue drop straddling the
    /// occupancy count in bin 1, and a gap leaving bin 2 empty.
    fn scripted() -> Vec<TraceEvent> {
        vec![
            ev(1, TraceKind::Send),
            ev(1, TraceKind::Enqueue { link: link(0) }),
            ev(2, TraceKind::Enqueue { link: link(0) }),
            ev(3, TraceKind::Dequeue { link: link(0) }),
            ev(4, TraceKind::Deliver { node: NodeId::from_index(1) }),
            ev(12, TraceKind::Enqueue { link: link(0) }),
            ev(12, TraceKind::Drop { link: link(0), reason: DropReason::Queue }),
            ev(13, TraceKind::Drop { link: link(0), reason: DropReason::LinkDown }),
            ev(35, TraceKind::Mark { link: link(0) }),
        ]
    }

    #[test]
    fn windowed_stats_aggregates_per_bin() {
        let mut w = WindowedStats::new(SimDuration::from_millis(10));
        for e in scripted() {
            w.record(&e);
        }
        let bins = w.bins();
        assert_eq!(bins.len(), 4);
        let b0 = &bins[0];
        assert_eq!((b0.sends, b0.enqueues, b0.dequeues), (1, 2, 1));
        assert_eq!((b0.delivered_packets, b0.delivered_bytes), (1, 1000));
        // Two enqueued, one dequeued: occupancy peaked at 2, ends at 1.
        assert_eq!((b0.occupancy_max, b0.occupancy_end), (2, 1));
        let b1 = &bins[1];
        assert_eq!((b1.drops_queue, b1.drops_link_down), (1, 1));
        // The queue drop undoes its own enqueue; link-down drops never
        // enqueued, so the carried packet from bin 0 is all that's left.
        assert_eq!((b1.occupancy_max, b1.occupancy_end), (2, 1));
        // Bin 2 is empty but still present.
        assert_eq!(bins[2], TraceBin { index: 2, occupancy_max: 1, occupancy_end: 1, ..TraceBin::default() });
        assert_eq!(bins[3].marks, 1);
    }

    #[test]
    fn stream_trace_matches_windowed_stats() {
        let mut w = WindowedStats::new(SimDuration::from_millis(10));
        let mut s = StreamTrace::new(Vec::new(), StreamFormat::Csv, SimDuration::from_millis(10));
        for e in scripted() {
            w.record(&e);
            s.record(&e);
        }
        assert_eq!(s.rows_written(), 3);
        let text = String::from_utf8(s.finish()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], STREAM_COLUMNS.join(","));
        assert_eq!(lines.len(), 1 + w.bins().len());
        for (line, bin) in lines[1..].iter().zip(w.bins()) {
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells.len(), STREAM_COLUMNS.len());
            assert_eq!(cells[0], bin.index.to_string());
            assert_eq!(cells[4], bin.dequeues.to_string());
            assert_eq!(cells[13], bin.occupancy_max.to_string());
        }
    }

    #[test]
    fn jsonl_rows_are_valid_json_objects() {
        let mut s =
            StreamTrace::new(Vec::new(), StreamFormat::Jsonl, SimDuration::from_millis(10));
        for e in scripted() {
            s.record(&e);
        }
        let text = String::from_utf8(s.finish()).unwrap();
        for line in text.lines() {
            assert!(line.starts_with("{\"bin\":") && line.ends_with('}'), "{line}");
            assert!(line.contains("\"start_secs\":"), "{line}");
        }
        assert_eq!(text.lines().count(), 4);
    }
}
