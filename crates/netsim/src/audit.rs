//! Opt-in runtime invariant auditing.
//!
//! Every figure in the paper reduces to counting packets correctly, so a
//! silent accounting bug — a slot leaked in the packet pool, a stale
//! timer firing into a stopped flow, link counters drifting apart —
//! corrupts results without failing a test. The auditor is a second,
//! independent set of books kept alongside the simulator's own state:
//!
//! * **Packet ledger.** Every packet injected via [`crate::sim::Ctx::send`]
//!   is tracked from injection to exactly one terminal state (delivered,
//!   dropped, or still in flight at end of run). After every timestamp
//!   batch the ledger's live count is compared against the slab pool's
//!   live-slot count, and at teardown the exact uid sets are compared,
//!   so the pool can never silently leak or double-free.
//! * **Link ledger.** Arrivals, departures, drops and transmitted bytes
//!   are counted per link independently of [`crate::stats::Stats`]; at
//!   teardown the conservation law `arrivals == departures + drops +
//!   queued + in_service` must hold and both sets of counters must agree.
//! * **Timer ledger.** Armed and fired timers are counted per agent. A
//!   *timer leak* — an agent whose [`crate::sim::Agent::audit_done`]
//!   reports the flow finished, yet re-arms a timer from its own timer
//!   callback — is flagged, because such an agent ticks forever and
//!   corrupts any metric sampled near it.
//!
//! Auditing is off by default (the hot path pays one pointer-null check
//! per event). Enable it per simulator with
//! [`crate::sim::Simulator::with_audit`], per process with
//! [`set_default_audit`], or via the environment: `SLOWCC_AUDIT=1` (or
//! `strict`) panics at the first violation, `SLOWCC_AUDIT=collect`
//! accumulates violations into a process-global [`AuditReport`] that
//! [`take_global_report`] drains — the mode the experiments runner's
//! `--audit` flag uses to audit a whole figure sweep.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};
use std::sync::{Mutex, OnceLock};

use serde::Serialize;

use crate::ids::{AgentId, LinkId};
use crate::stats::Stats;
use crate::time::SimTime;

/// How audit violations are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditMode {
    /// Panic at the first violation. The mode for tests and the
    /// `SLOWCC_AUDIT=1` smoke runs: a violation is a bug, fail loudly.
    Strict,
    /// Record violations into the [`AuditReport`] and keep running. The
    /// mode for sweep-wide audits (`repro --audit`), where one report at
    /// the end beats a panic in the middle of a parallel sweep.
    Collect,
}

/// Process-wide programmatic override:
/// 0 = unset (fall through to the environment), 1 = strict, 2 = collect,
/// 3 = force off.
static AUDIT_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The `SLOWCC_AUDIT` environment knob, read once per process.
static ENV_MODE: OnceLock<Option<AuditMode>> = OnceLock::new();

/// Force every subsequently created [`crate::sim::Simulator`] to audit in
/// `mode` (or not audit at all for `Some` of nothing — pass `None` to
/// restore the default resolution: environment, then off). Mirrors
/// [`crate::event::set_default_scheduler`].
pub fn set_default_audit(mode: Option<AuditMode>) {
    let v = match mode {
        None => 0,
        Some(AuditMode::Strict) => 1,
        Some(AuditMode::Collect) => 2,
    };
    AUDIT_OVERRIDE.store(v, AtomicOrdering::Relaxed);
}

/// The audit mode newly created simulators get: the [`set_default_audit`]
/// override if set, else the `SLOWCC_AUDIT` environment variable
/// (`1`/`strict`/`on`, `collect`, or `0`/`off`), else no auditing.
pub fn default_mode() -> Option<AuditMode> {
    match AUDIT_OVERRIDE.load(AtomicOrdering::Relaxed) {
        1 => Some(AuditMode::Strict),
        2 => Some(AuditMode::Collect),
        _ => *ENV_MODE.get_or_init(|| match std::env::var("SLOWCC_AUDIT") {
            Ok(v) if v == "1" || v == "strict" || v == "on" => Some(AuditMode::Strict),
            Ok(v) if v == "collect" => Some(AuditMode::Collect),
            Ok(v) if v == "0" || v == "off" || v.is_empty() => None,
            Ok(v) => panic!("SLOWCC_AUDIT must be 0/1/strict/collect, got `{v}`"),
            Err(_) => None,
        }),
    }
}

/// Terminal-state tracking for one injected packet, indexed by uid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PacketState {
    InFlight,
    Delivered,
    Dropped,
    /// Handed off to another shard's pool (conservative-parallel
    /// execution). Terminal *for this shard's books*; the cross-shard
    /// reconciliation in [`merge_shard_reports`] proves every exported
    /// packet was imported exactly once somewhere else.
    Exported,
}

/// Low 48 bits of a packet uid are the per-shard counter; the high bits
/// are the minting shard's tag (see `UID_TAG_SHIFT` in `sim.rs`).
const UID_INDEX_MASK: u64 = (1u64 << 48) - 1;

/// Independent per-link books: what the auditor itself saw happen at the
/// link, to be reconciled against [`Stats`] and the buffer occupancy.
#[derive(Debug, Default, Clone)]
struct LinkLedger {
    arrivals: u64,
    departures: u64,
    drops: u64,
    tx_bytes: u64,
}

/// Per-agent timer books.
#[derive(Debug, Default, Clone)]
struct TimerLedger {
    armed: u64,
    fired: u64,
}

/// Cap on stored violation messages, so a Collect-mode run with a
/// systematic bug doesn't grow a report without bound. The violation
/// *count* keeps counting past the cap.
const MAX_VIOLATION_MESSAGES: usize = 64;

/// The structured result of an audited run (or of several merged runs).
#[derive(Debug, Default, Clone, Serialize)]
pub struct AuditReport {
    /// Simulations merged into this report.
    pub sims: u64,
    /// Packets injected via `Ctx::send`.
    pub packets_injected: u64,
    /// Packets that reached their destination agent.
    pub packets_delivered: u64,
    /// Packets dropped (scripted loss + queue drops).
    pub packets_dropped: u64,
    /// Packets still in flight (queued or being serialized) at teardown.
    pub packets_in_flight: u64,
    /// Timers armed via `Ctx::set_timer`.
    pub timers_armed: u64,
    /// Timer events that fired.
    pub timers_fired: u64,
    /// Timers still pending at teardown. Informational, not a violation:
    /// a fire-and-forget timer design legitimately leaves e.g. a TCP
    /// sender's final RTO pending when the run's horizon cuts it off.
    pub timers_pending: u64,
    /// Done agents that re-armed a timer from their own timer callback —
    /// flows that would tick forever. Every leak is also a violation.
    pub timer_leaks: u64,
    /// Total invariant violations detected.
    pub violations: u64,
    /// Human-readable description of each violation (capped at
    /// [`MAX_VIOLATION_MESSAGES`] messages; `violations` keeps counting).
    pub violation_messages: Vec<String>,
}

impl AuditReport {
    /// True when the run held every invariant: no violations, no timer
    /// leaks.
    pub fn is_clean(&self) -> bool {
        self.violations == 0 && self.timer_leaks == 0
    }

    /// Panic with the report's summary unless [`Self::is_clean`].
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "audit failed: {}", self.summary());
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: &AuditReport) {
        self.sims += other.sims;
        self.packets_injected += other.packets_injected;
        self.packets_delivered += other.packets_delivered;
        self.packets_dropped += other.packets_dropped;
        self.packets_in_flight += other.packets_in_flight;
        self.timers_armed += other.timers_armed;
        self.timers_fired += other.timers_fired;
        self.timers_pending += other.timers_pending;
        self.timer_leaks += other.timer_leaks;
        self.violations += other.violations;
        for msg in &other.violation_messages {
            if self.violation_messages.len() >= MAX_VIOLATION_MESSAGES {
                break;
            }
            self.violation_messages.push(msg.clone());
        }
    }

    /// One-line human summary, for the `repro --audit` epilogue.
    pub fn summary(&self) -> String {
        format!(
            "{} sims audited: {} packets ({} delivered, {} dropped, {} in flight at end), \
             {} timers armed ({} fired, {} pending), {} timer leaks, {} violations",
            self.sims,
            self.packets_injected,
            self.packets_delivered,
            self.packets_dropped,
            self.packets_in_flight,
            self.timers_armed,
            self.timers_fired,
            self.timers_pending,
            self.timer_leaks,
            self.violations
        )
    }
}

/// Process-global accumulator: every audited simulator merges its report
/// here at teardown, so a whole sweep can be audited and read out once.
static GLOBAL_REPORT: Mutex<Option<AuditReport>> = Mutex::new(None);

pub(crate) fn merge_global(report: &AuditReport) {
    let mut g = GLOBAL_REPORT.lock().unwrap_or_else(|e| e.into_inner());
    match g.as_mut() {
        Some(acc) => acc.merge(report),
        None => *g = Some(report.clone()),
    }
}

/// Take (and clear) the process-global accumulated report. `None` when no
/// audited simulator has torn down since the last call.
pub fn take_global_report() -> Option<AuditReport> {
    GLOBAL_REPORT
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
}

/// Fold the per-shard teardown reports of ONE sharded simulation into a
/// single report (`sims == 1`, exactly what the serial run would have
/// produced), reconciling the cross-shard handoff ledgers: the multiset
/// of uids every shard exported must equal the multiset every shard
/// imported — a lost or duplicated handoff is an invariant violation
/// (and a panic when any shard audited strictly).
pub(crate) fn merge_shard_reports(
    parts: Vec<AuditReport>,
    mut exported: Vec<u64>,
    mut imported: Vec<u64>,
    strict: bool,
) -> AuditReport {
    let mut merged = AuditReport::default();
    for part in &parts {
        merged.merge(part);
    }
    merged.sims = 1;
    exported.sort_unstable();
    imported.sort_unstable();
    if exported != imported {
        let msg = format!(
            "cross-shard handoff mismatch: {} exports vs {} imports \
             (first divergence at {:?})",
            exported.len(),
            imported.len(),
            exported
                .iter()
                .zip(&imported)
                .find(|(e, i)| e != i)
                .map(|(e, i)| (*e, *i))
        );
        if strict {
            panic!("audit violation: {msg}");
        }
        merged.violations += 1;
        if merged.violation_messages.len() < MAX_VIOLATION_MESSAGES {
            merged.violation_messages.push(msg);
        }
    }
    merged
}

/// The auditor itself: one per audited simulator, owned by the world and
/// fed by hooks on the simulator's hot paths.
#[derive(Debug)]
pub(crate) struct Auditor {
    mode: AuditMode,
    /// This shard's uid tag: the high bits every natively minted uid
    /// carries. Zero on a serial simulator, where every uid is native.
    uid_tag: u64,
    /// Terminal-state ledger for natively minted packets, indexed by the
    /// low (counter) bits of the uid (assigned densely from zero by
    /// `Ctx::send`).
    ledger: Vec<PacketState>,
    /// Terminal-state ledger for packets imported from other shards,
    /// keyed by full (foreign-tagged) uid. Empty on a serial simulator.
    imported: BTreeMap<u64, PacketState>,
    /// Every cross-shard handoff, as seen from each side (multisets, so
    /// a packet bouncing A→B→A is two entries). Reconciled globally at
    /// teardown by [`merge_shard_reports`].
    exported_log: Vec<u64>,
    imported_log: Vec<u64>,
    /// Maintained live-packet count: `+1` inject/import, `-1` on any
    /// terminal state. Equals the pool's live-slot count at all times.
    live: u64,
    delivered: u64,
    dropped: u64,
    links: Vec<LinkLedger>,
    timers: Vec<TimerLedger>,
    timer_leaks: u64,
    violations: u64,
    messages: Vec<String>,
}

impl Auditor {
    pub(crate) fn new(mode: AuditMode) -> Self {
        Auditor::sharded(mode, 0)
    }

    /// An auditor for one shard of a sharded simulator: native uids carry
    /// `uid_tag` in their high bits, anything else must arrive via
    /// [`Self::on_import`].
    pub(crate) fn sharded(mode: AuditMode, uid_tag: u64) -> Self {
        Auditor {
            mode,
            uid_tag,
            ledger: Vec::new(),
            imported: BTreeMap::new(),
            exported_log: Vec::new(),
            imported_log: Vec::new(),
            live: 0,
            delivered: 0,
            dropped: 0,
            links: Vec::new(),
            timers: Vec::new(),
            timer_leaks: 0,
            violations: 0,
            messages: Vec::new(),
        }
    }

    /// The mode this auditor runs in (to replicate onto shard auditors).
    pub(crate) fn mode(&self) -> AuditMode {
        self.mode
    }

    /// Whether a violation panics on the spot.
    pub(crate) fn is_strict(&self) -> bool {
        self.mode == AuditMode::Strict
    }

    /// Downgrade to Collect, used when teardown runs during an unrelated
    /// panic and must not double-panic.
    pub(crate) fn set_collect(&mut self) {
        self.mode = AuditMode::Collect;
    }

    /// Drain the export-side handoff log for cross-shard reconciliation.
    pub(crate) fn take_exported_log(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.exported_log)
    }

    /// Drain the import-side handoff log for cross-shard reconciliation.
    pub(crate) fn take_imported_log(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.imported_log)
    }

    fn violation(&mut self, msg: String) {
        if self.mode == AuditMode::Strict {
            panic!("audit violation: {msg}");
        }
        self.violations += 1;
        if self.messages.len() < MAX_VIOLATION_MESSAGES {
            self.messages.push(msg);
        }
    }

    /// Whether `uid` was minted by this shard (always true serially).
    fn is_native(&self, uid: u64) -> bool {
        uid & !UID_INDEX_MASK == self.uid_tag
    }

    /// Current state of `uid`, wherever its books live.
    fn state_of(&self, uid: u64) -> Option<PacketState> {
        if self.is_native(uid) {
            self.ledger.get((uid & UID_INDEX_MASK) as usize).copied()
        } else {
            self.imported.get(&uid).copied()
        }
    }

    fn set_state(&mut self, uid: u64, state: PacketState) {
        if self.is_native(uid) {
            self.ledger[(uid & UID_INDEX_MASK) as usize] = state;
        } else {
            *self
                .imported
                .get_mut(&uid)
                .expect("set_state only after state_of succeeded") = state;
        }
    }

    fn link_mut(&mut self, link: LinkId) -> &mut LinkLedger {
        let ix = link.index();
        if self.links.len() <= ix {
            self.links.resize_with(ix + 1, LinkLedger::default);
        }
        &mut self.links[ix]
    }

    fn timer_mut(&mut self, agent: AgentId) -> &mut TimerLedger {
        let ix = agent.index();
        if self.timers.len() <= ix {
            self.timers.resize_with(ix + 1, TimerLedger::default);
        }
        &mut self.timers[ix]
    }

    // --- hooks fed by sim.rs ---

    /// A packet entered the pool via `Ctx::send`.
    pub(crate) fn on_inject(&mut self, uid: u64) {
        if uid != self.uid_tag | self.ledger.len() as u64 {
            self.violation(format!(
                "packet uid {uid} injected out of order (expected {})",
                self.uid_tag | self.ledger.len() as u64
            ));
            return;
        }
        self.ledger.push(PacketState::InFlight);
        self.live += 1;
    }

    /// A packet left this shard's pool for another shard's.
    pub(crate) fn on_export(&mut self, uid: u64) {
        self.terminate(uid, PacketState::Exported, "exported");
        self.exported_log.push(uid);
    }

    /// A packet arrived from another shard's pool. Legitimately
    /// re-enlivens a uid this shard already exported (a packet whose
    /// route revisits the shard); anything else live is a double import.
    pub(crate) fn on_import(&mut self, uid: u64) {
        self.imported_log.push(uid);
        let prior = if self.is_native(uid) {
            self.state_of(uid)
        } else {
            Some(
                *self
                    .imported
                    .entry(uid)
                    .or_insert(PacketState::Exported),
            )
        };
        match prior {
            Some(PacketState::Exported) => {
                self.set_state(uid, PacketState::InFlight);
                self.live += 1;
            }
            Some(prior) => self.violation(format!(
                "packet uid {uid} imported while already {prior:?} in this shard"
            )),
            None => self.violation(format!(
                "packet uid {uid} imported but claims to be native here and was never injected"
            )),
        }
    }

    fn terminate(&mut self, uid: u64, state: PacketState, what: &str) {
        match self.state_of(uid) {
            Some(PacketState::InFlight) => {
                self.set_state(uid, state);
                self.live -= 1;
                match state {
                    PacketState::Delivered => self.delivered += 1,
                    PacketState::Dropped => self.dropped += 1,
                    PacketState::Exported => {}
                    PacketState::InFlight => unreachable!(),
                }
            }
            Some(prior) => self.violation(format!(
                "packet uid {uid} {what} but was already {prior:?} (double terminal state)"
            )),
            None => self.violation(format!("packet uid {uid} {what} but was never injected")),
        }
    }

    /// A packet was dropped at `link` (scripted loss or queue drop).
    pub(crate) fn on_link_drop(&mut self, link: LinkId, uid: u64) {
        self.terminate(uid, PacketState::Dropped, "dropped");
        self.link_mut(link).drops += 1;
    }

    /// A packet reached its destination agent.
    pub(crate) fn on_deliver(&mut self, uid: u64) {
        self.terminate(uid, PacketState::Delivered, "delivered");
    }

    /// A packet was offered to `link` (counted before loss/queueing).
    pub(crate) fn on_link_arrival(&mut self, link: LinkId) {
        self.link_mut(link).arrivals += 1;
    }

    /// A packet finished serializing on `link`.
    pub(crate) fn on_link_departure(&mut self, link: LinkId, bytes: u32) {
        let l = self.link_mut(link);
        l.departures += 1;
        l.tx_bytes += bytes as u64;
    }

    /// `Ctx::set_timer` ran for `agent`.
    pub(crate) fn on_timer_armed(&mut self, agent: AgentId) {
        self.timer_mut(agent).armed += 1;
    }

    /// An `AgentTimer` event fired for `agent`.
    pub(crate) fn on_timer_fired(&mut self, agent: AgentId) {
        self.timer_mut(agent).fired += 1;
    }

    /// Timers `agent` has armed so far (for the re-arm-while-done check).
    pub(crate) fn timers_armed_of(&self, agent: AgentId) -> u64 {
        self.timers.get(agent.index()).map_or(0, |t| t.armed)
    }

    /// `agent` reported itself done yet re-armed a timer from its own
    /// timer callback — it will tick forever.
    pub(crate) fn on_timer_leak(&mut self, agent: AgentId, now: SimTime) {
        self.timer_leaks += 1;
        self.violation(format!(
            "timer leak: done agent {agent} re-armed a timer from its timer callback at {now}"
        ));
    }

    /// O(1) cross-check: the pool's live-slot count must equal the
    /// ledger's live count. Under batched dispatch (DESIGN.md §5g) the
    /// simulator calls this once per timestamp batch rather than once
    /// per event — lossless, because every handler returns with pool
    /// and ledger reconciled, so a divergence visible after one event
    /// is still visible at the batch boundary.
    pub(crate) fn check_pool(&mut self, pool_len: usize, now: SimTime) {
        let live = self.live;
        if pool_len as u64 != live {
            self.violation(format!(
                "pool/ledger divergence at {now}: pool holds {pool_len} live packets, \
                 ledger says {live}"
            ));
        }
    }

    /// Teardown: reconcile the ledger against the pool's exact live uid
    /// set, each link's conservation law and [`Stats`] counters, and
    /// produce the run's report.
    ///
    /// `link_state[i]` is `(queue_len, in_service)` for link `i`.
    pub(crate) fn finish(
        &mut self,
        mut pool_live_uids: Vec<u64>,
        link_state: &[(usize, bool)],
        stats: &Stats,
    ) -> AuditReport {
        // Exact uid-set equality between the pool and the ledger (native
        // live uids re-tagged, plus imported live uids).
        pool_live_uids.sort_unstable();
        let mut ledger_live_uids: Vec<u64> = self
            .ledger
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == PacketState::InFlight)
            .map(|(ix, _)| self.uid_tag | ix as u64)
            .collect();
        ledger_live_uids.extend(
            self.imported
                .iter()
                .filter(|(_, s)| **s == PacketState::InFlight)
                .map(|(uid, _)| *uid),
        );
        ledger_live_uids.sort_unstable();
        if pool_live_uids != ledger_live_uids {
            let pool_only: Vec<u64> = pool_live_uids
                .iter()
                .filter(|u| ledger_live_uids.binary_search(u).is_err())
                .copied()
                .collect();
            let ledger_only: Vec<u64> = ledger_live_uids
                .iter()
                .filter(|u| pool_live_uids.binary_search(u).is_err())
                .copied()
                .collect();
            self.violation(format!(
                "pool/ledger uid sets diverge at teardown: \
                 {pool_only:?} live only in pool, {ledger_only:?} live only in ledger"
            ));
        }

        // Per-link conservation and Stats reconciliation.
        for ix in 0..self.links.len().max(link_state.len()) {
            let id = LinkId::from_index(ix);
            let ledger = self.links.get(ix).cloned().unwrap_or_default();
            let (queued, in_service) = link_state.get(ix).copied().unwrap_or((0, false));
            let held = queued as u64 + u64::from(in_service);
            if ledger.arrivals != ledger.departures + ledger.drops + held {
                self.violation(format!(
                    "link {id} conservation broken: {} arrivals != {} departures \
                     + {} drops + {held} held",
                    ledger.arrivals, ledger.departures, ledger.drops
                ));
            }
            let Some(s) = stats.link(id) else {
                if ledger.arrivals != 0 {
                    self.violation(format!("link {id} has audit traffic but no Stats entry"));
                }
                continue;
            };
            if s.total_arrivals != ledger.arrivals
                || s.total_drops != ledger.drops
                || s.total_tx_bytes != ledger.tx_bytes
                || s.total_tx_packets != ledger.departures
            {
                self.violation(format!(
                    "link {id} Stats/audit divergence: stats \
                     (arrivals {}, drops {}, tx_bytes {}, tx_packets {}) vs audit \
                     (arrivals {}, drops {}, tx_bytes {}, departures {})",
                    s.total_arrivals,
                    s.total_drops,
                    s.total_tx_bytes,
                    s.total_tx_packets,
                    ledger.arrivals,
                    ledger.drops,
                    ledger.tx_bytes,
                    ledger.departures
                ));
            }
        }

        // Per-shard packet conservation: everything that entered this
        // shard's books (native injections plus imports) left through a
        // terminal state or is still live. Serially the export/import
        // terms are zero and this is the classic conservation law.
        let in_flight = self.live;
        let imported_n = self.imported_log.len() as u64;
        let exported_n = self.exported_log.len() as u64;
        if self.ledger.len() as u64 + imported_n
            != self.delivered + self.dropped + exported_n + in_flight
        {
            self.violation(format!(
                "packet conservation broken: {} injected + {imported_n} imported != \
                 {} delivered + {} dropped + {exported_n} exported + {in_flight} in flight",
                self.ledger.len(),
                self.delivered,
                self.dropped
            ));
        }

        let timers_armed: u64 = self.timers.iter().map(|t| t.armed).sum();
        let timers_fired: u64 = self.timers.iter().map(|t| t.fired).sum();

        AuditReport {
            sims: 1,
            packets_injected: self.ledger.len() as u64,
            packets_delivered: self.delivered,
            packets_dropped: self.dropped,
            packets_in_flight: in_flight,
            timers_armed,
            timers_fired,
            timers_pending: timers_armed.saturating_sub(timers_fired),
            timer_leaks: self.timer_leaks,
            violations: self.violations,
            violation_messages: std::mem::take(&mut self.messages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_merge_sums_counters_and_caps_messages() {
        let mut a = AuditReport {
            sims: 1,
            packets_injected: 10,
            packets_delivered: 8,
            packets_dropped: 1,
            packets_in_flight: 1,
            timers_armed: 5,
            timers_fired: 4,
            timers_pending: 1,
            timer_leaks: 0,
            violations: 0,
            violation_messages: Vec::new(),
        };
        let b = AuditReport {
            sims: 2,
            packets_injected: 5,
            packets_delivered: 5,
            violations: 1,
            violation_messages: vec!["x".into()],
            ..AuditReport::default()
        };
        a.merge(&b);
        assert_eq!(a.sims, 3);
        assert_eq!(a.packets_injected, 15);
        assert_eq!(a.packets_delivered, 13);
        assert_eq!(a.violations, 1);
        assert_eq!(a.violation_messages.len(), 1);
        assert!(!a.is_clean());
    }

    #[test]
    fn collect_mode_records_instead_of_panicking() {
        let mut auditor = Auditor::new(AuditMode::Collect);
        auditor.on_inject(0);
        auditor.on_deliver(0);
        auditor.on_deliver(0); // double terminal state
        auditor.on_deliver(7); // never injected
        let report = auditor.finish(Vec::new(), &[], &Stats::new(crate::time::SimDuration::from_millis(10)));
        assert_eq!(report.violations, 2);
        assert!(!report.is_clean());
        assert_eq!(report.packets_delivered, 1);
    }

    #[test]
    #[should_panic(expected = "audit violation")]
    fn strict_mode_panics_on_violation() {
        let mut auditor = Auditor::new(AuditMode::Strict);
        auditor.on_deliver(3); // never injected
    }
}
