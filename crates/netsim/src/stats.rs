//! Time-binned statistics collected by the simulator.
//!
//! Everything the paper's metrics need is derivable from three streams of
//! counters, recorded automatically for every flow and link:
//!
//! * per-flow transmitted bytes/packets (sending rate, smoothness),
//! * per-flow delivered bytes/packets at the destination (throughput,
//!   fairness, utilization),
//! * per-link arrivals, drops and transmitted bytes at the buffer
//!   (loss-rate series, stabilization metrics, utilization).
//!
//! Counters are accumulated into fixed-width time bins (default 10 ms) and
//! re-aggregated into coarser windows on demand, so one simulation run can
//! feed metrics that need different window sizes.

use serde::Serialize;

use crate::ids::{FlowId, LinkId};
use crate::time::{SimDuration, SimTime};

/// Per-flow counters.
#[derive(Debug, Default, Clone, Serialize)]
pub struct FlowStats {
    /// Bytes handed to the network by the source, per bin.
    pub tx_bytes: Vec<u64>,
    /// Data bytes delivered to the destination agent, per bin.
    pub rx_bytes: Vec<u64>,
    /// Data packets delivered to the destination agent, per bin.
    pub rx_packets: Vec<u64>,
    /// Total bytes handed to the network by the source.
    pub total_tx_bytes: u64,
    /// Total data bytes delivered to the destination agent.
    pub total_rx_bytes: u64,
    /// Total data packets delivered to the destination agent.
    pub total_rx_packets: u64,
}

/// Per-link counters, recorded at the link buffer.
#[derive(Debug, Default, Clone, Serialize)]
pub struct LinkStats {
    /// Packets offered to the link (before loss patterns and queueing).
    pub arrivals: Vec<u64>,
    /// Packets dropped (scripted loss + queue drops), per bin.
    pub drops: Vec<u64>,
    /// Packets ECN-marked (scripted marking + RED-with-ECN), per bin.
    pub marks: Vec<u64>,
    /// Sum of the buffer occupancies observed by arriving packets, per
    /// bin; divided by `arrivals` this gives the mean queue seen on
    /// arrival (the queue-dynamics metric).
    pub queue_sum: Vec<u64>,
    /// Bytes that completed serialization, per bin.
    pub tx_bytes: Vec<u64>,
    /// Total packets offered to the link.
    pub total_arrivals: u64,
    /// Total packets dropped at the link.
    pub total_drops: u64,
    /// Total packets ECN-marked at the link.
    pub total_marks: u64,
    /// Total bytes that completed serialization.
    pub total_tx_bytes: u64,
    /// Total packets that completed serialization.
    pub total_tx_packets: u64,
    /// Packets cloned by the fault layer (see [`crate::faults`]). The
    /// clone later shows up in `total_arrivals` like any offered packet.
    pub total_duplicates: u64,
    /// Packets sent through the fault layer's reorder hold bay.
    pub total_fault_held: u64,
    /// Packets dropped inside a scripted outage window. A subset of
    /// `total_drops`, kept separately so experiments can distinguish
    /// blackhole loss from congestive loss.
    pub total_flap_drops: u64,
}

/// Statistics store. Owned by the simulator; read out after (or during)
/// a run.
#[derive(Debug)]
pub struct Stats {
    bin: SimDuration,
    /// Memo of the last bin resolved by the record path: `[start, end)`
    /// in nanos and the bin index. Record timestamps are nearly monotone
    /// and bins are ~10 ms wide, so almost every record hits the memo
    /// and skips the 64-bit division in [`Self::bin_index`].
    bin_memo: (u64, u64, usize),
    /// Bin-count hint for newly created per-flow/per-link series, set
    /// from the `run_until` horizon: series are allocated at their final
    /// capacity up front instead of doubling through ~10 reallocs each
    /// over the run. Capacity only — serialized lengths are untouched.
    reserve_hint: usize,
    flows: Vec<FlowStats>,
    links: Vec<LinkStats>,
}

fn bump(v: &mut Vec<u64>, ix: usize, amount: u64) {
    if v.len() <= ix {
        v.resize(ix + 1, 0);
    }
    v[ix] += amount;
}

impl Stats {
    /// A store with the given bin width. Panics on a zero width, which
    /// would make every event land in one bin.
    pub fn new(bin: SimDuration) -> Self {
        assert!(!bin.is_zero(), "stats bin width must be positive");
        Stats {
            bin,
            bin_memo: (0, 0, 0),
            reserve_hint: 0,
            flows: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Width of the native bins.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    fn bin_index(&self, t: SimTime) -> usize {
        (t.as_nanos() / self.bin.as_nanos()) as usize
    }

    /// [`Self::bin_index`] for the record path: checks the `[start, end)`
    /// memo before dividing. Returns the identical index for every input
    /// (the memo is an exact cache, not an approximation), so recorded
    /// series are byte-for-byte unaffected.
    #[inline]
    fn bin_index_hot(&mut self, t: SimTime) -> usize {
        let ns = t.as_nanos();
        let (start, end, ix) = self.bin_memo;
        if ns >= start && ns < end {
            return ix;
        }
        let width = self.bin.as_nanos();
        let ix = (ns / width) as usize;
        let start = ix as u64 * width;
        self.bin_memo = (start, start.saturating_add(width), ix);
        ix
    }

    /// Record the horizon the simulator is about to run to, so series
    /// created from here on start at their final capacity. Clamped so a
    /// `run_until(SimTime::MAX)` drain cannot trigger a huge allocation.
    pub(crate) fn set_reserve_hint(&mut self, until: SimTime) {
        const MAX_HINT_BINS: usize = 1 << 17;
        self.reserve_hint = self
            .reserve_hint
            .max((self.bin_index(until) + 1).min(MAX_HINT_BINS));
    }

    fn series(&self) -> Vec<u64> {
        Vec::with_capacity(self.reserve_hint)
    }

    pub(crate) fn ensure_flow(&mut self, flow: FlowId) {
        while self.flows.len() <= flow.index() {
            self.flows.push(FlowStats {
                tx_bytes: self.series(),
                rx_bytes: self.series(),
                rx_packets: self.series(),
                ..FlowStats::default()
            });
        }
    }

    pub(crate) fn ensure_link(&mut self, link: LinkId) {
        while self.links.len() <= link.index() {
            self.links.push(LinkStats {
                arrivals: self.series(),
                drops: self.series(),
                marks: self.series(),
                queue_sum: self.series(),
                tx_bytes: self.series(),
                ..LinkStats::default()
            });
        }
    }

    pub(crate) fn record_flow_tx(&mut self, flow: FlowId, now: SimTime, bytes: u32) {
        let ix = self.bin_index_hot(now);
        self.ensure_flow(flow);
        let f = &mut self.flows[flow.index()];
        bump(&mut f.tx_bytes, ix, bytes as u64);
        f.total_tx_bytes += bytes as u64;
    }

    pub(crate) fn record_flow_rx(&mut self, flow: FlowId, now: SimTime, bytes: u32) {
        let ix = self.bin_index_hot(now);
        self.ensure_flow(flow);
        let f = &mut self.flows[flow.index()];
        bump(&mut f.rx_bytes, ix, bytes as u64);
        bump(&mut f.rx_packets, ix, 1);
        f.total_rx_bytes += bytes as u64;
        f.total_rx_packets += 1;
    }

    pub(crate) fn record_link_arrival(&mut self, link: LinkId, now: SimTime, queue_len: usize) {
        let ix = self.bin_index_hot(now);
        self.ensure_link(link);
        let l = &mut self.links[link.index()];
        bump(&mut l.arrivals, ix, 1);
        bump(&mut l.queue_sum, ix, queue_len as u64);
        l.total_arrivals += 1;
    }

    /// Mean buffer occupancy seen by packets arriving at `link`, per
    /// `window`-wide interval (zero where nothing arrived).
    pub fn link_queue_series(&self, link: LinkId, window: SimDuration, until: SimTime) -> Vec<f64> {
        let Some(l) = self.link(link) else {
            return Vec::new();
        };
        let n = until.as_nanos().div_ceil(window.as_nanos());
        (0..n)
            .map(|w| {
                let from = SimTime::from_nanos(w * window.as_nanos());
                let to = SimTime::from_nanos((w + 1) * window.as_nanos());
                let arrivals = self.sum_window(&l.arrivals, from, to);
                if arrivals == 0 {
                    0.0
                } else {
                    self.sum_window(&l.queue_sum, from, to) as f64 / arrivals as f64
                }
            })
            .collect()
    }

    pub(crate) fn record_link_drop(&mut self, link: LinkId, now: SimTime) {
        let ix = self.bin_index_hot(now);
        self.ensure_link(link);
        let l = &mut self.links[link.index()];
        bump(&mut l.drops, ix, 1);
        l.total_drops += 1;
    }

    /// A scripted-outage drop: ordinary drop accounting plus the
    /// flap-specific sub-counter.
    pub(crate) fn record_link_flap_drop(&mut self, link: LinkId, now: SimTime) {
        self.record_link_drop(link, now);
        self.links[link.index()].total_flap_drops += 1;
    }

    pub(crate) fn record_link_duplicate(&mut self, link: LinkId) {
        self.ensure_link(link);
        self.links[link.index()].total_duplicates += 1;
    }

    pub(crate) fn record_link_fault_held(&mut self, link: LinkId) {
        self.ensure_link(link);
        self.links[link.index()].total_fault_held += 1;
    }

    pub(crate) fn record_link_mark(&mut self, link: LinkId, now: SimTime) {
        let ix = self.bin_index_hot(now);
        self.ensure_link(link);
        let l = &mut self.links[link.index()];
        bump(&mut l.marks, ix, 1);
        l.total_marks += 1;
    }

    pub(crate) fn record_link_tx(&mut self, link: LinkId, now: SimTime, bytes: u32) {
        let ix = self.bin_index_hot(now);
        self.ensure_link(link);
        let l = &mut self.links[link.index()];
        bump(&mut l.tx_bytes, ix, bytes as u64);
        l.total_tx_bytes += bytes as u64;
        l.total_tx_packets += 1;
    }

    /// Fold another store's counters into this one, element-wise. All
    /// counters are exact `u64`s, so merging the per-shard stores of a
    /// sharded run (each flow/link is recorded by exactly one shard)
    /// reproduces the serial store bit-for-bit. Series are extended to
    /// the longer of the two lengths, matching serial behavior where a
    /// series ends at its last recorded bin.
    pub(crate) fn absorb(&mut self, other: &Stats) {
        assert_eq!(self.bin, other.bin, "cannot merge stats with different bins");
        fn add_series(dst: &mut Vec<u64>, src: &[u64]) {
            if dst.len() < src.len() {
                dst.resize(src.len(), 0);
            }
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        for (ix, f) in other.flows.iter().enumerate() {
            self.ensure_flow(FlowId::from_index(ix));
            let d = &mut self.flows[ix];
            add_series(&mut d.tx_bytes, &f.tx_bytes);
            add_series(&mut d.rx_bytes, &f.rx_bytes);
            add_series(&mut d.rx_packets, &f.rx_packets);
            d.total_tx_bytes += f.total_tx_bytes;
            d.total_rx_bytes += f.total_rx_bytes;
            d.total_rx_packets += f.total_rx_packets;
        }
        for (ix, l) in other.links.iter().enumerate() {
            self.ensure_link(LinkId::from_index(ix));
            let d = &mut self.links[ix];
            add_series(&mut d.arrivals, &l.arrivals);
            add_series(&mut d.drops, &l.drops);
            add_series(&mut d.marks, &l.marks);
            add_series(&mut d.queue_sum, &l.queue_sum);
            add_series(&mut d.tx_bytes, &l.tx_bytes);
            d.total_arrivals += l.total_arrivals;
            d.total_drops += l.total_drops;
            d.total_marks += l.total_marks;
            d.total_tx_bytes += l.total_tx_bytes;
            d.total_tx_packets += l.total_tx_packets;
            d.total_duplicates += l.total_duplicates;
            d.total_fault_held += l.total_fault_held;
            d.total_flap_drops += l.total_flap_drops;
        }
    }

    /// Raw per-flow counters, if the flow ever carried traffic.
    pub fn flow(&self, flow: FlowId) -> Option<&FlowStats> {
        self.flows.get(flow.index())
    }

    /// Raw per-link counters, if the link ever saw traffic.
    pub fn link(&self, link: LinkId) -> Option<&LinkStats> {
        self.links.get(link.index())
    }

    /// Sum a binned counter over the half-open interval `[from, to)`.
    fn sum_window(&self, series: &[u64], from: SimTime, to: SimTime) -> u64 {
        if to <= from {
            return 0;
        }
        let lo = self.bin_index(from);
        // `to` is exclusive; the bin containing `to - 1ns` is the last.
        let hi = ((to.as_nanos() - 1) / self.bin.as_nanos()) as usize;
        series.iter().skip(lo).take(hi.saturating_sub(lo) + 1).sum()
    }

    /// Data bytes delivered on `flow` in `[from, to)`.
    pub fn flow_rx_bytes_in(&self, flow: FlowId, from: SimTime, to: SimTime) -> u64 {
        self.flow(flow)
            .map_or(0, |f| self.sum_window(&f.rx_bytes, from, to))
    }

    /// Bytes the source of `flow` transmitted in `[from, to)`.
    pub fn flow_tx_bytes_in(&self, flow: FlowId, from: SimTime, to: SimTime) -> u64 {
        self.flow(flow)
            .map_or(0, |f| self.sum_window(&f.tx_bytes, from, to))
    }

    /// Average delivered throughput of `flow` over `[from, to)` in bits/s.
    pub fn flow_throughput_bps(&self, flow: FlowId, from: SimTime, to: SimTime) -> f64 {
        let secs = to.saturating_since(from).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.flow_rx_bytes_in(flow, from, to) as f64 * 8.0 / secs
    }

    /// Delivered throughput of `flow` re-binned into windows of `window`
    /// width starting at time zero, in bits/s per window.
    pub fn flow_rate_series_bps(
        &self,
        flow: FlowId,
        window: SimDuration,
        until: SimTime,
    ) -> Vec<f64> {
        self.rate_series(
            self.flow(flow)
                .map(|f| f.rx_bytes.as_slice())
                .unwrap_or(&[]),
            window,
            until,
        )
    }

    /// Source sending rate of `flow` re-binned into `window`-wide windows,
    /// in bits/s per window.
    pub fn flow_tx_rate_series_bps(
        &self,
        flow: FlowId,
        window: SimDuration,
        until: SimTime,
    ) -> Vec<f64> {
        self.rate_series(
            self.flow(flow)
                .map(|f| f.tx_bytes.as_slice())
                .unwrap_or(&[]),
            window,
            until,
        )
    }

    fn rate_series(&self, bytes: &[u64], window: SimDuration, until: SimTime) -> Vec<f64> {
        assert!(
            window.as_nanos() >= self.bin.as_nanos(),
            "window narrower than stats bin"
        );
        let n = until.as_nanos().div_ceil(window.as_nanos());
        let secs = window.as_secs_f64();
        (0..n)
            .map(|w| {
                let from = SimTime::from_nanos(w * window.as_nanos());
                let to = SimTime::from_nanos((w + 1) * window.as_nanos());
                self.sum_window(bytes, from, to) as f64 * 8.0 / secs
            })
            .collect()
    }

    /// Packets dropped at `link` over `[from, to)`.
    pub fn link_drops_in(&self, link: LinkId, from: SimTime, to: SimTime) -> u64 {
        self.link(link)
            .map_or(0, |l| self.sum_window(&l.drops, from, to))
    }

    /// Packets ECN-marked at `link` over `[from, to)`.
    pub fn link_marks_in(&self, link: LinkId, from: SimTime, to: SimTime) -> u64 {
        self.link(link)
            .map_or(0, |l| self.sum_window(&l.marks, from, to))
    }

    /// Packet drop fraction at `link` over `[from, to)`:
    /// drops / arrivals, or zero when nothing arrived.
    pub fn link_loss_fraction_in(&self, link: LinkId, from: SimTime, to: SimTime) -> f64 {
        let Some(l) = self.link(link) else { return 0.0 };
        let arrivals = self.sum_window(&l.arrivals, from, to);
        if arrivals == 0 {
            return 0.0;
        }
        let drops = self.sum_window(&l.drops, from, to);
        drops as f64 / arrivals as f64
    }

    /// Loss-fraction time series at `link` in windows of `window` width.
    pub fn link_loss_series(&self, link: LinkId, window: SimDuration, until: SimTime) -> Vec<f64> {
        let n = until.as_nanos().div_ceil(window.as_nanos());
        (0..n)
            .map(|w| {
                let from = SimTime::from_nanos(w * window.as_nanos());
                let to = SimTime::from_nanos((w + 1) * window.as_nanos());
                self.link_loss_fraction_in(link, from, to)
            })
            .collect()
    }

    /// Bytes that completed serialization on `link` over `[from, to)`.
    pub fn link_tx_bytes_in(&self, link: LinkId, from: SimTime, to: SimTime) -> u64 {
        self.link(link)
            .map_or(0, |l| self.sum_window(&l.tx_bytes, from, to))
    }

    /// Utilization of `link` over `[from, to)` against a nominal rate.
    pub fn link_utilization_in(
        &self,
        link: LinkId,
        from: SimTime,
        to: SimTime,
        rate_bps: f64,
    ) -> f64 {
        let secs = to.saturating_since(from).as_secs_f64();
        if secs <= 0.0 || rate_bps <= 0.0 {
            return 0.0;
        }
        (self.link_tx_bytes_in(link, from, to) as f64 * 8.0) / (rate_bps * secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn flow_counters_aggregate_by_window() {
        let mut s = Stats::new(SimDuration::from_millis(10));
        let f = FlowId::from_index(0);
        s.record_flow_rx(f, t(5), 1000);
        s.record_flow_rx(f, t(15), 1000);
        s.record_flow_rx(f, t(95), 500);
        assert_eq!(s.flow_rx_bytes_in(f, t(0), t(20)), 2000);
        assert_eq!(s.flow_rx_bytes_in(f, t(0), t(100)), 2500);
        assert_eq!(s.flow_rx_bytes_in(f, t(20), t(90)), 0);
        // 2500 bytes over 0.1 s = 200 kbit/s.
        assert!((s.flow_throughput_bps(f, t(0), t(100)) - 200_000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_windows_are_zero() {
        let s = Stats::new(SimDuration::from_millis(10));
        let f = FlowId::from_index(3);
        assert_eq!(s.flow_rx_bytes_in(f, t(0), t(100)), 0);
        assert_eq!(s.flow_throughput_bps(f, t(10), t(10)), 0.0);
    }

    #[test]
    fn loss_fraction_counts_drops_over_arrivals() {
        let mut s = Stats::new(SimDuration::from_millis(10));
        let l = LinkId::from_index(0);
        for i in 0..10 {
            s.record_link_arrival(l, t(i), 0);
        }
        s.record_link_drop(l, t(3));
        s.record_link_drop(l, t(4));
        assert!((s.link_loss_fraction_in(l, t(0), t(10)) - 0.2).abs() < 1e-12);
        assert_eq!(s.link_loss_fraction_in(l, t(100), t(200)), 0.0);
    }

    #[test]
    fn rate_series_covers_the_whole_horizon() {
        let mut s = Stats::new(SimDuration::from_millis(10));
        let f = FlowId::from_index(0);
        s.record_flow_rx(f, t(5), 125); // 125 B in first 100 ms window -> 10 kbit/s
        s.record_flow_rx(f, t(150), 250);
        let series = s.flow_rate_series_bps(f, SimDuration::from_millis(100), t(200));
        assert_eq!(series.len(), 2);
        assert!((series[0] - 10_000.0).abs() < 1e-6);
        assert!((series[1] - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_against_nominal_rate() {
        let mut s = Stats::new(SimDuration::from_millis(10));
        let l = LinkId::from_index(1);
        // 125_000 bytes in 1 second = 1 Mbit/s.
        s.record_link_tx(l, t(500), 125_000);
        let u = s.link_utilization_in(l, t(0), SimTime::from_secs(1), 2e6);
        assert!((u - 0.5).abs() < 1e-9);
    }
}
