//! Cooperative execution budgets and cancellation.
//!
//! A [`Budget`] bounds how much work one simulation may do — wall
//! clock, dispatched events, and consecutive zero-clock-advance batches
//! (the livelock signature of a timer loop that never advances time) —
//! plus an opt-in to the process-global cancel flag raised by signal
//! handlers. The running [`crate::sim::Simulator`] checks its budget at
//! **batch boundaries** (see `Shard::run_window`): integer counters
//! every batch, the `Instant::now()` syscall and the cancel-flag load
//! only every [`WALL_CHECK_MASK`]+1 batches, so an armed-but-untripped
//! budget costs a few ALU ops per batch and nothing per event.
//!
//! A tripped budget **unwinds** with [`SimAbort`] as the panic payload
//! (`std::panic::panic_any`). Unwinding — rather than a `Result` from
//! `run_until` — keeps the dozens of existing call sites unchanged and
//! reuses the sharded engine's poison machinery: a shard that trips
//! poisons the round, every sibling joins at the next barrier, and the
//! payload is re-thrown on the caller's thread. Supervisors catch the
//! unwind with `catch_unwind` and downcast the payload to classify the
//! failure; the thread is joined and all simulator state is dropped, so
//! nothing is ever abandoned.
//!
//! Checks have **no side effects** while untripped: arming a budget
//! that never trips leaves every simulation byte-identical.
//!
//! Budgets reach deeply-constructed simulators the same way the
//! scheduler, shard-count, and audit knobs do: a worker thread calls
//! [`set_thread_budget`] and every `Simulator::new` on that thread
//! captures it. [`crate::sim::Simulator::set_budget`] overrides it
//! per-instance (before the first `run_until`).

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::time::SimTime;

/// Check the wall clock and cancel flag when `batches & WALL_CHECK_MASK
/// == 0`: every 4096 batches, amortizing `Instant::now()` to noise.
const WALL_CHECK_MASK: u64 = 0xFFF;

/// Cooperative execution bounds for one simulation. `Default` is fully
/// unlimited (nothing armed, zero per-batch cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit, measured from the `Simulator`'s construction.
    pub wall_clock: Option<Duration>,
    /// Maximum dispatched events (per shard on a sharded simulator).
    pub max_events: Option<u64>,
    /// Maximum *consecutive* event batches at the same simulated time.
    /// A zero-advance timer loop produces one batch per wakeup forever;
    /// real workloads advance the clock constantly, so even deep
    /// same-timestamp dispatch chains stay orders of magnitude below
    /// [`Budget::DEFAULT_LIVELOCK_BATCHES`].
    pub livelock_batches: Option<u64>,
    /// Observe the process-global cancel flag ([`request_cancel`]).
    pub observe_cancel: bool,
}

impl Budget {
    /// Default zero-advance bound used by supervisors: ~10^6 consecutive
    /// batches at one timestamp is far beyond any legitimate dispatch
    /// chain but trips a tight timer loop in well under a second.
    pub const DEFAULT_LIVELOCK_BATCHES: u64 = 1_000_000;

    /// An unlimited budget (the `Default`).
    pub fn none() -> Self {
        Budget::default()
    }

    /// True when nothing is armed: the per-batch check short-circuits.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }

    /// Builder: arm the wall-clock limit.
    pub fn with_wall_clock(mut self, limit: Duration) -> Self {
        self.wall_clock = Some(limit);
        self
    }

    /// Builder: arm the event-count limit.
    pub fn with_max_events(mut self, limit: u64) -> Self {
        self.max_events = Some(limit);
        self
    }

    /// Builder: arm the zero-clock-advance (livelock) bound.
    pub fn with_livelock_batches(mut self, limit: u64) -> Self {
        self.livelock_batches = Some(limit);
        self
    }

    /// Builder: observe the process-global cancel flag.
    pub fn with_cancel(mut self) -> Self {
        self.observe_cancel = true;
        self
    }
}

/// Why a budgeted simulation unwound. This is the panic payload thrown
/// by `panic_any` when a [`Budget`] trips; supervisors downcast it to
/// classify the failure. Messages are deterministic (they name the
/// *limit*, never elapsed wall time), so a deterministic failure
/// reproduces byte-identically on retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimAbort {
    /// The wall-clock limit elapsed.
    Deadline {
        /// The armed limit.
        limit: Duration,
    },
    /// The event budget was exhausted.
    MaxEvents {
        /// The armed limit.
        limit: u64,
    },
    /// The simulated clock stopped advancing: `batches` consecutive
    /// batches dispatched at time `at`.
    Livelock {
        /// The timestamp the simulation is stuck at.
        at: SimTime,
        /// The armed consecutive-batch bound.
        batches: u64,
    },
    /// The process-global cancel flag was raised ([`request_cancel`]).
    Cancelled,
}

impl fmt::Display for SimAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimAbort::Deadline { limit } => {
                write!(f, "sim abort: wall-clock budget exceeded ({:?})", limit)
            }
            SimAbort::MaxEvents { limit } => {
                write!(f, "sim abort: event budget exhausted ({limit} events)")
            }
            SimAbort::Livelock { at, batches } => write!(
                f,
                "sim abort: livelock suspected ({batches} zero-advance batches at t={:.6}s)",
                at.as_secs_f64()
            ),
            SimAbort::Cancelled => write!(f, "sim abort: cancelled"),
        }
    }
}

thread_local! {
    static THREAD_BUDGET: Cell<Budget> = const { Cell::new(Budget {
        wall_clock: None,
        max_events: None,
        livelock_batches: None,
        observe_cancel: false,
    }) };
}

/// Install `budget` as this thread's default: every `Simulator`
/// constructed on this thread afterwards is born with it. Supervisors
/// set it on worker threads before running a cell (and reset it after),
/// so budgets reach simulators built deep inside experiment code
/// without threading a parameter through every layer — the same
/// pattern as the scheduler and shard-count knobs.
pub fn set_thread_budget(budget: Budget) {
    THREAD_BUDGET.with(|b| b.set(budget));
}

/// This thread's default budget (unlimited unless [`set_thread_budget`]
/// was called).
pub fn thread_budget() -> Budget {
    THREAD_BUDGET.with(Cell::get)
}

/// Process-global cancel flag. Raised (from a signal handler or any
/// thread) by [`request_cancel`]; observed, at wall-check cadence, by
/// every running simulation whose budget has `observe_cancel`.
static CANCEL: AtomicBool = AtomicBool::new(false);

/// Raise the process-global cancel flag. Async-signal-safe (a single
/// relaxed atomic store), so signal handlers may call it directly.
pub fn request_cancel() {
    CANCEL.store(true, Ordering::Relaxed);
}

/// Whether [`request_cancel`] has been called (and not reset).
pub fn cancel_requested() -> bool {
    CANCEL.load(Ordering::Relaxed)
}

/// Lower the cancel flag (tests; or a supervisor starting a new sweep).
pub fn reset_cancel() {
    CANCEL.store(false, Ordering::Relaxed);
}

/// Per-world budget-checking state: the armed [`Budget`] plus the
/// counters the batch-boundary check advances. Replicated per shard by
/// `Simulator::seal` (counters reset, deadline instant preserved), so
/// every shard polices its own dispatch loop.
#[derive(Debug, Clone)]
pub struct BudgetState {
    budget: Budget,
    /// Absolute deadline, computed once at arming so sharding never
    /// extends the wall-clock allowance.
    deadline: Option<Instant>,
    /// Fast-path skip: false means `on_batch` is a single branch.
    armed: bool,
    /// `budget.max_events` with `None` flattened to `u64::MAX`, so the
    /// hot path compares against a plain integer instead of unpacking
    /// an `Option` every batch.
    events_limit: u64,
    /// `budget.livelock_batches`, likewise flattened to `u64::MAX`.
    livelock_limit: u64,
    events: u64,
    batches: u64,
    last_time: SimTime,
    same_time_batches: u64,
}

impl BudgetState {
    /// Arm `budget` now (the wall clock starts here).
    pub fn new(budget: Budget) -> Self {
        BudgetState {
            deadline: budget.wall_clock.map(|limit| Instant::now() + limit),
            armed: !budget.is_unlimited(),
            events_limit: budget.max_events.unwrap_or(u64::MAX),
            livelock_limit: budget.livelock_batches.unwrap_or(u64::MAX),
            budget,
            events: 0,
            batches: 0,
            last_time: SimTime::ZERO,
            same_time_batches: 0,
        }
    }

    /// The armed budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// A fresh copy for a new shard: same budget and same absolute
    /// deadline, counters back to zero.
    pub fn replicate(&self) -> Self {
        BudgetState {
            budget: self.budget,
            deadline: self.deadline,
            armed: self.armed,
            events_limit: self.events_limit,
            livelock_limit: self.livelock_limit,
            events: 0,
            batches: 0,
            last_time: SimTime::ZERO,
            same_time_batches: 0,
        }
    }

    /// Batch-boundary check: account one batch of `batch_len` events at
    /// `time` and unwind with [`SimAbort`] if any armed bound tripped.
    /// No-op (one branch) when nothing is armed; no side effects beyond
    /// this state while untripped.
    #[inline]
    pub fn on_batch(&mut self, time: SimTime, batch_len: usize) {
        if !self.armed {
            return;
        }
        self.batches = self.batches.wrapping_add(1);
        self.events += batch_len as u64;
        if time == self.last_time {
            self.same_time_batches += 1;
        } else {
            self.last_time = time;
            self.same_time_batches = 1;
        }
        // One predictable branch guards all the tripping paths: the
        // limits are `u64::MAX` when unarmed, so untripped hot batches
        // fall through on two integer compares.
        if self.events > self.events_limit || self.same_time_batches >= self.livelock_limit {
            self.trip(time);
        }
        if self.batches & WALL_CHECK_MASK == 0 {
            self.check_wall();
        }
    }

    /// An integer bound tripped: unwind with the matching [`SimAbort`].
    #[cold]
    fn trip(&self, time: SimTime) -> ! {
        if self.events > self.events_limit {
            std::panic::panic_any(SimAbort::MaxEvents {
                limit: self.events_limit,
            });
        }
        std::panic::panic_any(SimAbort::Livelock {
            at: time,
            batches: self.livelock_limit,
        });
    }

    /// The amortized slow path: wall clock and cancel flag.
    #[cold]
    fn check_wall(&self) {
        if self.budget.observe_cancel && cancel_requested() {
            std::panic::panic_any(SimAbort::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                std::panic::panic_any(SimAbort::Deadline {
                    limit: self.budget.wall_clock.expect("deadline implies wall_clock"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catch_abort(f: impl FnOnce()) -> SimAbort {
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .expect_err("budget should have tripped");
        *payload
            .downcast::<SimAbort>()
            .expect("payload should be a SimAbort")
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let mut state = BudgetState::new(Budget::none());
        for i in 0..100_000u64 {
            state.on_batch(SimTime::from_nanos(0), 10);
            state.on_batch(SimTime::from_nanos(i), 10);
        }
    }

    #[test]
    fn max_events_trips_at_the_limit() {
        let mut state = BudgetState::new(Budget::none().with_max_events(100));
        for i in 0..10 {
            state.on_batch(SimTime::from_nanos(i), 10);
        }
        let abort = catch_abort(move || state.on_batch(SimTime::from_nanos(11), 1));
        assert_eq!(abort, SimAbort::MaxEvents { limit: 100 });
    }

    #[test]
    fn livelock_counts_consecutive_same_time_batches_only() {
        let mut state = BudgetState::new(Budget::none().with_livelock_batches(1000));
        // Advancing time resets the streak: never trips.
        for i in 0..5_000u64 {
            state.on_batch(SimTime::from_nanos(i / 2), 1);
        }
        let abort = catch_abort(move || {
            let t = SimTime::from_nanos(7777);
            loop {
                state.on_batch(t, 1);
            }
        });
        assert_eq!(
            abort,
            SimAbort::Livelock {
                at: SimTime::from_nanos(7777),
                batches: 1000
            }
        );
    }

    #[test]
    fn zero_wall_clock_trips_at_the_amortized_check() {
        let mut state = BudgetState::new(Budget::none().with_wall_clock(Duration::ZERO));
        let abort = catch_abort(move || {
            for i in 0..10_000u64 {
                state.on_batch(SimTime::from_nanos(i), 1);
            }
        });
        assert_eq!(
            abort,
            SimAbort::Deadline {
                limit: Duration::ZERO
            }
        );
    }

    #[test]
    fn cancel_flag_observed_only_when_opted_in() {
        request_cancel();
        let mut deaf = BudgetState::new(Budget::none().with_max_events(u64::MAX));
        for i in 0..10_000u64 {
            deaf.on_batch(SimTime::from_nanos(i), 1);
        }
        let mut state = BudgetState::new(Budget::none().with_cancel());
        let abort = catch_abort(move || {
            for i in 0..10_000u64 {
                state.on_batch(SimTime::from_nanos(i), 1);
            }
        });
        reset_cancel();
        assert_eq!(abort, SimAbort::Cancelled);
        assert!(!cancel_requested());
    }

    #[test]
    fn thread_budget_round_trips_and_replication_resets_counters() {
        assert!(thread_budget().is_unlimited());
        let b = Budget::none().with_max_events(7).with_cancel();
        set_thread_budget(b);
        assert_eq!(thread_budget(), b);
        set_thread_budget(Budget::none());

        let mut state = BudgetState::new(Budget::none().with_max_events(1000));
        state.on_batch(SimTime::from_nanos(1), 999);
        let mut replica = state.replicate();
        // A replica starts from zero events: another 999 fit.
        replica.on_batch(SimTime::from_nanos(2), 999);
        assert_eq!(replica.budget(), state.budget());
    }

    #[test]
    fn abort_messages_are_deterministic() {
        assert_eq!(
            SimAbort::Deadline {
                limit: Duration::from_secs(5)
            }
            .to_string(),
            "sim abort: wall-clock budget exceeded (5s)"
        );
        assert_eq!(
            SimAbort::MaxEvents { limit: 42 }.to_string(),
            "sim abort: event budget exhausted (42 events)"
        );
        assert_eq!(
            SimAbort::Livelock {
                at: SimTime::from_millis(1500),
                batches: 9
            }
            .to_string(),
            "sim abort: livelock suspected (9 zero-advance batches at t=1.500000s)"
        );
        assert_eq!(SimAbort::Cancelled.to_string(), "sim abort: cancelled");
    }
}
