//! Simulation clock types.
//!
//! Simulated time is an integer count of nanoseconds since the start of the
//! simulation. Using an integer (rather than `f64` seconds) keeps event
//! ordering exact and makes runs bit-for-bit reproducible: two events
//! scheduled from different code paths at "the same time" compare equal
//! instead of differing in the last ulp.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in nanoseconds since time zero.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_nanos(s))
    }

    /// Nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since time zero, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_nanos(s))
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer factor.
    pub const fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

fn secs_to_nanos(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        return 0;
    }
    let ns = s * NANOS_PER_SEC as f64;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    /// Ratio of two spans, as a float.
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Time taken to serialize `bytes` onto a link of `rate_bps` bits/second.
///
/// Rounds up to the nearest nanosecond so back-to-back transmissions never
/// overlap. A zero or negative rate yields a zero duration (an "infinitely
/// fast" link), which keeps degenerate configurations safe.
pub fn transmission_time(bytes: u32, rate_bps: f64) -> SimDuration {
    if rate_bps <= 0.0 {
        return SimDuration::ZERO;
    }
    let secs = (bytes as f64 * 8.0) / rate_bps;
    SimDuration::from_nanos((secs * NANOS_PER_SEC as f64).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_secs() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_arithmetic() {
        let t = SimTime::from_secs(1);
        assert_eq!(t.saturating_since(SimTime::from_secs(2)), SimDuration::ZERO);
        assert_eq!(t - SimDuration::from_secs(5), SimTime::ZERO);
        assert_eq!(t.checked_since(SimTime::from_secs(2)), None);
        assert_eq!(
            SimTime::from_secs(2).checked_since(t),
            Some(SimDuration::from_secs(1))
        );
    }

    #[test]
    fn negative_and_nan_floats_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn transmission_time_examples() {
        // 1000 bytes at 8 Mb/s is exactly 1 ms.
        assert_eq!(transmission_time(1000, 8e6), SimDuration::from_millis(1));
        // Zero-rate links serialize instantly rather than dividing by zero.
        assert_eq!(transmission_time(1000, 0.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_ratio() {
        let a = SimDuration::from_secs(3);
        let b = SimDuration::from_secs(2);
        assert!((a / b - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(11);
        assert!(a < b);
        assert_eq!(a + SimDuration::from_nanos(1), b);
    }
}
