//! Unidirectional links: a serialization rate, a propagation delay, a
//! buffer governed by a [`QueueDiscipline`], and an optional scripted
//! [`LossPattern`] used to impose the hand-crafted drop sequences of the
//! paper's smoothness experiments (Figures 17-19).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::faults::{FaultPlan, FaultState};
use crate::ids::NodeId;
use crate::packet::Packet;
use crate::pool::PacketId;
use crate::queue::QueueDiscipline;
use crate::time::{transmission_time, SimDuration, SimTime};

/// Decides, per packet, whether the link artificially drops it before the
/// buffer sees it. Implementations are deterministic state machines so the
/// paper's exact loss scripts ("drop every 200th packet for six seconds,
/// then every 4th for one second") can be expressed.
pub trait LossPattern: Send {
    /// Called for every packet offered to the link, in arrival order.
    /// Return `true` to drop the packet.
    fn should_drop(&mut self, pkt: &Packet, now: SimTime) -> bool;
}

/// Drops every `n`-th packet that is eligible (data packets only by
/// default, so ACK streams on shared links are unaffected).
#[derive(Debug, Clone)]
pub struct EveryNth {
    n: u64,
    seen: u64,
    data_only: bool,
}

impl EveryNth {
    /// Drop one of every `n` data packets. `n == 0` never drops.
    pub fn data_every(n: u64) -> Self {
        EveryNth {
            n,
            seen: 0,
            data_only: true,
        }
    }
}

impl LossPattern for EveryNth {
    fn should_drop(&mut self, pkt: &Packet, _now: SimTime) -> bool {
        if self.n == 0 || (self.data_only && !pkt.is_data()) {
            return false;
        }
        self.seen += 1;
        if self.seen >= self.n {
            self.seen = 0;
            true
        } else {
            false
        }
    }
}

/// Drops each data packet independently with probability `p`, using its
/// own seeded RNG so the loss process is reproducible and independent of
/// the rest of the simulation. The standard model for validating
/// *static* TCP-compatibility (a fixed loss rate, as in the paper's
/// Section 2 definition).
#[derive(Debug, Clone)]
pub struct BernoulliLoss {
    p: f64,
    rng: SmallRng,
}

impl BernoulliLoss {
    /// Drop each data packet with probability `p` in `[0, 1]`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        BernoulliLoss {
            p,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl LossPattern for BernoulliLoss {
    fn should_drop(&mut self, pkt: &Packet, _now: SimTime) -> bool {
        pkt.is_data() && self.rng.gen::<f64>() < self.p
    }
}

/// Decides, per packet, whether the link ECN-marks it (applied before
/// the buffer, to ECN-capable packets only). Used by validation
/// experiments that need a fixed marking probability independent of the
/// queue state — the environment Section 4.2.2's convergence model
/// assumes.
pub trait MarkPattern: Send {
    /// Return `true` to mark `pkt` with congestion-experienced.
    fn should_mark(&mut self, pkt: &Packet, now: SimTime) -> bool;
}

impl MarkPattern for BernoulliLoss {
    fn should_mark(&mut self, pkt: &Packet, now: SimTime) -> bool {
        // Same decision process as the loss variant, applied as a mark.
        self.should_drop(pkt, now)
    }
}

/// A unidirectional link.
///
/// The simulator drives the link: packets offered while the transmitter is
/// busy go through the queue discipline; `start_service` pulls the next
/// packet when the transmitter frees up. Propagation delay is added by the
/// simulator after serialization completes.
pub struct Link {
    /// Where delivered packets arrive.
    pub(crate) dst: NodeId,
    /// Serialization rate in bits per second.
    pub(crate) rate_bps: f64,
    /// One-way propagation delay.
    pub(crate) delay: SimDuration,
    pub(crate) queue: Box<dyn QueueDiscipline>,
    pub(crate) loss: Option<Box<dyn LossPattern>>,
    pub(crate) marker: Option<Box<dyn MarkPattern>>,
    /// Optional scripted fault injection (see [`crate::faults`]).
    pub(crate) faults: Option<FaultState>,
    /// Private RNG stream consumed by the queue discipline (RED's drop
    /// draws). Seeded by the simulator from `(sim seed, link index)`, so
    /// each link's draw sequence depends only on the packets *it* sees —
    /// not on interleaving with other links — which is what makes sharded
    /// execution bit-identical to serial. Placeholder-seeded here;
    /// [`crate::sim::Simulator::add_link`] installs the real stream.
    pub(crate) rng: SmallRng,
    /// The packet currently being serialized, if any. Living on the link
    /// (rather than in a parallel simulator-side vector) keeps the
    /// transmitter state on the same cache lines as the queue it feeds.
    pub(crate) in_service: Option<PacketId>,
    /// Serialization-time memo: the last two distinct packet sizes seen
    /// and their [`transmission_time`], most recent first. Real traffic
    /// is bimodal (data segments and ACKs), so in steady state every
    /// `start_service` is a table hit and the per-packet f64
    /// divide-and-ceil is paid only when a new size appears. Seeded with
    /// size 0 → zero duration, which is exactly what
    /// [`transmission_time`] returns for an empty packet.
    tx_memo: [(u32, SimDuration); 2],
}

impl Link {
    /// A link toward `dst` with the given rate, propagation delay and
    /// buffer discipline.
    pub fn new(
        dst: NodeId,
        rate_bps: f64,
        delay: SimDuration,
        queue: Box<dyn QueueDiscipline>,
    ) -> Self {
        assert!(rate_bps >= 0.0, "link rate must be non-negative");
        Link {
            dst,
            rate_bps,
            delay,
            queue,
            loss: None,
            marker: None,
            faults: None,
            rng: SmallRng::seed_from_u64(0),
            in_service: None,
            tx_memo: [(0, SimDuration::ZERO); 2],
        }
    }

    /// Whether a packet is currently being serialized.
    #[inline]
    pub(crate) fn busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Serialization time for a packet of `size` bytes on this link,
    /// via the two-entry memo. Pure memoization of
    /// [`transmission_time`]: for a given size the returned duration is
    /// bit-identical to the direct computation, always.
    #[inline]
    pub(crate) fn tx_time(&mut self, size: u32) -> SimDuration {
        if self.tx_memo[0].0 == size {
            return self.tx_memo[0].1;
        }
        if self.tx_memo[1].0 == size {
            self.tx_memo.swap(0, 1);
            return self.tx_memo[0].1;
        }
        let t = transmission_time(size, self.rate_bps);
        self.tx_memo[1] = self.tx_memo[0];
        self.tx_memo[0] = (size, t);
        t
    }

    /// Attach a scripted loss pattern executed before the buffer.
    pub fn with_loss(mut self, loss: Box<dyn LossPattern>) -> Self {
        self.loss = Some(loss);
        self
    }

    /// Attach an ECN marking pattern executed before the buffer
    /// (ECN-capable packets only).
    pub fn with_marker(mut self, marker: Box<dyn MarkPattern>) -> Self {
        self.marker = Some(marker);
        self
    }

    /// Attach a deterministic fault plan (reordering, duplication,
    /// jitter, flapping) executed around the loss/mark stage. See
    /// [`crate::faults`] for the model and its audit guarantees.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(FaultState::new(plan));
        self
    }

    /// The fault plan attached to this link, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Destination node of this link.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Serialization rate in bits per second.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// One-way propagation delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Current buffer occupancy in packets (excluding the packet being
    /// serialized).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

impl core::fmt::Debug for Link {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Link")
            .field("dst", &self.dst)
            .field("rate_bps", &self.rate_bps)
            .field("delay", &self.delay)
            .field("queue_len", &self.queue.len())
            .field("busy", &self.busy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AgentId, FlowId};
    use crate::packet::{AckInfo, DataInfo, Payload};

    fn pkt(uid: u64, payload: Payload) -> Packet {
        Packet {
            uid,
            flow: FlowId::from_index(0),
            seq: uid,
            size: 1000,
            payload,
            src_node: NodeId::from_index(0),
            dst_node: NodeId::from_index(1),
            src_agent: AgentId::from_index(0),
            dst_agent: AgentId::from_index(1),
            sent_at: SimTime::ZERO,
            ecn: Default::default(),
        }
    }

    #[test]
    fn tx_time_memo_matches_direct_computation() {
        use crate::queue::DropTail;
        let mut link = Link::new(
            NodeId::from_index(1),
            10e6,
            SimDuration::ZERO,
            Box::new(DropTail::new(10)),
        );
        // Bimodal steady state, an eviction (1500), a re-fault (1040)
        // and the degenerate size-0 seed entry.
        for &size in &[1040u32, 40, 1040, 40, 1500, 40, 1040, 0] {
            assert_eq!(
                link.tx_time(size),
                transmission_time(size, 10e6),
                "size {size}"
            );
        }
    }

    #[test]
    fn every_nth_drops_exactly_one_in_n_data_packets() {
        let mut p = EveryNth::data_every(4);
        let mut drops = 0;
        for uid in 0..40 {
            if p.should_drop(&pkt(uid, Payload::Data(DataInfo::default())), SimTime::ZERO) {
                drops += 1;
            }
        }
        assert_eq!(drops, 10);
    }

    #[test]
    fn every_nth_ignores_acks() {
        let mut p = EveryNth::data_every(1);
        let ack = pkt(0, Payload::Ack(AckInfo::cumulative(1, 0, SimTime::ZERO)));
        assert!(!p.should_drop(&ack, SimTime::ZERO));
        assert!(p.should_drop(&pkt(1, Payload::Data(DataInfo::default())), SimTime::ZERO));
    }

    #[test]
    fn bernoulli_loss_hits_its_probability() {
        let mut p = BernoulliLoss::new(0.1, 9);
        let n = 50_000;
        let mut drops = 0;
        for uid in 0..n {
            if p.should_drop(&pkt(uid, Payload::Data(DataInfo::default())), SimTime::ZERO) {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut never = BernoulliLoss::new(0.0, 1);
        let mut always = BernoulliLoss::new(1.0, 1);
        let d = pkt(0, Payload::Data(DataInfo::default()));
        assert!(!never.should_drop(&d, SimTime::ZERO));
        assert!(always.should_drop(&d, SimTime::ZERO));
        let ack = pkt(0, Payload::Ack(AckInfo::cumulative(1, 0, SimTime::ZERO)));
        assert!(!always.should_drop(&ack, SimTime::ZERO));
    }

    #[test]
    fn zero_n_never_drops() {
        let mut p = EveryNth::data_every(0);
        for uid in 0..10 {
            assert!(!p.should_drop(&pkt(uid, Payload::Data(DataInfo::default())), SimTime::ZERO));
        }
    }
}
