#!/usr/bin/env bash
# Full verification: tier-1 (release build + tests) plus a smoke run of
# the parallel figure regeneration, checking that `repro --quick all`
# produces byte-identical output under --jobs 1 and --jobs 8.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== repro --quick all smoke (--jobs 1 vs --jobs 8) =="
cargo build --release -p slowcc-experiments --bin repro
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/repro --quick all --jobs 1 --out "$tmp/j1" > "$tmp/stdout_j1.txt"
./target/release/repro --quick all --jobs 8 --out "$tmp/j8" > "$tmp/stdout_j8.txt"
diff -r "$tmp/j1" "$tmp/j8"
diff "$tmp/stdout_j1.txt" "$tmp/stdout_j8.txt"
echo "parallel output byte-identical to serial"

echo "== scheduler equivalence smoke (heap vs calendar) =="
SLOWCC_SCHEDULER=heap ./target/release/repro --quick fig45 --out "$tmp/heap" > /dev/null
SLOWCC_SCHEDULER=calendar ./target/release/repro --quick fig45 --out "$tmp/calendar" > /dev/null
diff -r "$tmp/heap" "$tmp/calendar"
echo "calendar-queue output byte-identical to binary heap"

echo "== audited smoke (SLOWCC_AUDIT=1, both schedulers) =="
# Strict env-var path: any invariant violation panics the run.
SLOWCC_AUDIT=1 SLOWCC_SCHEDULER=heap ./target/release/repro --quick fig45 > /dev/null
# Collect --audit path: the run reports and the exit code gates.
SLOWCC_AUDIT=1 SLOWCC_SCHEDULER=calendar ./target/release/repro --quick --audit fig45 > "$tmp/audit_calendar.txt"
grep "audit: " "$tmp/audit_calendar.txt"
grep -q " 0 timer leaks, 0 violations" "$tmp/audit_calendar.txt"
echo "audited fig45 clean under both schedulers"

echo "== chaos fault-injection smoke (SLOWCC_AUDIT=strict, both schedulers) =="
SLOWCC_AUDIT=strict SLOWCC_SCHEDULER=heap \
  ./target/release/repro --quick chaos --out "$tmp/chaos_heap" > "$tmp/chaos_heap.txt"
SLOWCC_AUDIT=strict SLOWCC_SCHEDULER=calendar \
  ./target/release/repro --quick chaos --out "$tmp/chaos_cal" > "$tmp/chaos_cal.txt"
# Same seeds, same backend, second run: must replay byte-identically.
SLOWCC_AUDIT=strict SLOWCC_SCHEDULER=calendar \
  ./target/release/repro --quick chaos --out "$tmp/chaos_cal2" > "$tmp/chaos_cal2.txt"
diff -r "$tmp/chaos_heap" "$tmp/chaos_cal"
diff -r "$tmp/chaos_cal" "$tmp/chaos_cal2"
diff "$tmp/chaos_heap.txt" "$tmp/chaos_cal.txt"
diff "$tmp/chaos_cal.txt" "$tmp/chaos_cal2.txt"
grep -q "all graceful" "$tmp/chaos_heap.txt"
echo "chaos sweep audit-clean, bit-identical across runs and schedulers"

echo "== crash isolation: deliberate panic-cell fixture =="
if ./target/release/repro --quick --out "$tmp/crash" fig11 panic-cell \
    > "$tmp/crash.txt" 2>&1; then
  echo "ERROR: panic-cell should have produced a nonzero exit"; exit 1
fi
grep -q "FAILED cell panic-cell" "$tmp/crash.txt"
grep -q '"panic-cell": {"status": "panicked"' "$tmp/crash/manifest.json"
grep -q '"fig11": {"status": "ok"}' "$tmp/crash/manifest.json"  # sibling survived
# --resume skips the ok sibling and re-runs only the failed cell.
if ./target/release/repro --quick --out "$tmp/crash" --resume fig11 panic-cell \
    > "$tmp/resume.txt" 2>&1; then
  echo "ERROR: resumed panic-cell should still exit nonzero"; exit 1
fi
grep -q "resume: skipping fig11" "$tmp/resume.txt"
grep -q "FAILED cell panic-cell" "$tmp/resume.txt"
echo "panic isolated, manifest recorded, resume re-ran only the failure"

echo "== verify OK =="
