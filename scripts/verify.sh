#!/usr/bin/env bash
# Full verification: tier-1 (release build + tests) plus smoke runs of
# the unified `repro` execution path — parallel and resumed sweeps must
# be byte-identical, scheduler backends and shard counts
# interchangeable, audits clean, a panicking cell isolated to itself,
# and the dumbbell hot path no slower than the committed benchmark
# baseline (see the bench gate at the bottom).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

cargo build --release -p slowcc-experiments --bin repro
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== target list from the registry (repro list) =="
# Every target below comes from `repro list` itself, so a newly
# registered experiment is covered here without editing this script.
targets="$(./target/release/repro list \
  | awk '/^experiments:$/{f=1; next} /^aliases:$/{f=0} f{print $1}')"
if [ -z "$targets" ]; then
  echo "ERROR: repro list produced no targets"; exit 1
fi
echo "targets: $(echo "$targets" | tr '\n' ' ')"

echo "== repro --quick smoke over all listed targets (--jobs 1 vs --jobs 8) =="
# shellcheck disable=SC2086
./target/release/repro --quick $targets --jobs 1 --out "$tmp/j1" > "$tmp/stdout_j1.txt"
# shellcheck disable=SC2086
./target/release/repro --quick $targets --jobs 8 --out "$tmp/j8" > "$tmp/stdout_j8.txt"
diff -r "$tmp/j1" "$tmp/j8"
diff "$tmp/stdout_j1.txt" "$tmp/stdout_j8.txt"
echo "parallel output byte-identical to serial"

echo "== RFC conformance gate (repro conformance) =="
# The specs/ tree must parse with unique requirement ids, zero
# dangling test links, and no MUST-level requirement left `untested`
# without a recorded `deviates` rationale. Any violation panics its
# cell (FAILED cell conformance/<file>), which makes this command —
# and therefore verify — exit nonzero.
./target/release/repro --quick conformance > "$tmp/conformance.txt"
grep -q "every MUST tested or deviates" "$tmp/conformance.txt"
for rfc in rfc1122 rfc2481 rfc3448 rfc5681 rfc6298 rfc6582; do
  grep -q "$rfc" "$tmp/conformance.txt"
done
echo "conformance ledger clean over all six RFCs"

echo "== scheduler equivalence smoke (heap vs calendar) =="
SLOWCC_SCHEDULER=heap ./target/release/repro --quick fig45 --out "$tmp/heap" > /dev/null
SLOWCC_SCHEDULER=calendar ./target/release/repro --quick fig45 --out "$tmp/calendar" > /dev/null
diff -r "$tmp/heap" "$tmp/calendar"
echo "calendar-queue output byte-identical to binary heap"

echo "== shard equivalence smoke (SLOWCC_SHARDS=4, both schedulers) =="
# Conservative-parallel execution must reproduce the serial run
# byte-for-byte on either scheduler backend (DESIGN.md §5h).
SLOWCC_SHARDS=4 SLOWCC_SCHEDULER=heap \
  ./target/release/repro --quick fig45 --out "$tmp/sharded_heap" > /dev/null
SLOWCC_SHARDS=4 SLOWCC_SCHEDULER=calendar \
  ./target/release/repro --quick fig45 --out "$tmp/sharded_cal" > /dev/null
diff -r "$tmp/heap" "$tmp/sharded_heap"
diff -r "$tmp/calendar" "$tmp/sharded_cal"
echo "4-shard output byte-identical to serial on both schedulers"

echo "== audited smoke (SLOWCC_AUDIT=1, both schedulers) =="
# Strict env-var path: any invariant violation panics the run.
SLOWCC_AUDIT=1 SLOWCC_SCHEDULER=heap ./target/release/repro --quick fig45 > /dev/null
# Collect --audit path: the run reports and the exit code gates.
SLOWCC_AUDIT=1 SLOWCC_SCHEDULER=calendar ./target/release/repro --quick --audit fig45 > "$tmp/audit_calendar.txt"
grep "audit: " "$tmp/audit_calendar.txt"
grep -q " 0 timer leaks, 0 violations" "$tmp/audit_calendar.txt"
echo "audited fig45 clean under both schedulers"

echo "== chaos fault-injection smoke (SLOWCC_AUDIT=strict, both schedulers) =="
SLOWCC_AUDIT=strict SLOWCC_SCHEDULER=heap \
  ./target/release/repro --quick chaos --out "$tmp/chaos_heap" > "$tmp/chaos_heap.txt"
SLOWCC_AUDIT=strict SLOWCC_SCHEDULER=calendar \
  ./target/release/repro --quick chaos --out "$tmp/chaos_cal" > "$tmp/chaos_cal.txt"
# Same seeds, same backend, second run: must replay byte-identically.
SLOWCC_AUDIT=strict SLOWCC_SCHEDULER=calendar \
  ./target/release/repro --quick chaos --out "$tmp/chaos_cal2" > "$tmp/chaos_cal2.txt"
diff -r "$tmp/chaos_heap" "$tmp/chaos_cal"
diff -r "$tmp/chaos_cal" "$tmp/chaos_cal2"
diff "$tmp/chaos_heap.txt" "$tmp/chaos_cal.txt"
diff "$tmp/chaos_cal.txt" "$tmp/chaos_cal2.txt"
grep -q "all graceful" "$tmp/chaos_heap.txt"
echo "chaos sweep audit-clean, bit-identical across runs and schedulers"

echo "== resume replay smoke (fully cached rerun, byte-identical) =="
./target/release/repro --quick fig3 fig45 --out "$tmp/resume_base" > "$tmp/resume_stdout1.txt"
cp -r "$tmp/resume_base" "$tmp/resume_before"
./target/release/repro --quick fig3 fig45 --out "$tmp/resume_base" --resume \
  > "$tmp/resume_stdout2.txt" 2> "$tmp/resume_stderr2.txt"
diff "$tmp/resume_stdout1.txt" "$tmp/resume_stdout2.txt"
diff -r "$tmp/resume_before" "$tmp/resume_base"
grep -q "cells already ok" "$tmp/resume_stderr2.txt"
echo "resumed run replayed every cell from cache, output byte-identical"

echo "== crash isolation: deliberate panic-cell fixture =="
# A multi-cell figure rides along so the resume below demonstrably
# skips completed cells one by one rather than per target.
if ./target/release/repro --quick --out "$tmp/crash" fig45 panic-cell \
    > "$tmp/crash.txt" 2>&1; then
  echo "ERROR: panic-cell should have produced a nonzero exit"; exit 1
fi
grep -q "FAILED cell panic-cell/fixture" "$tmp/crash.txt"
grep -q '"panic-cell/fixture": {"status": "panicked"' "$tmp/crash/manifest.json"
# Every sibling figure cell survived the panic.
fig45_cells="$(grep -c '"fig45/' "$tmp/crash/manifest.json")"
fig45_ok="$(grep '"fig45/' "$tmp/crash/manifest.json" | grep -c '"status": "ok"')"
if [ "$fig45_cells" -lt 2 ] || [ "$fig45_cells" -ne "$fig45_ok" ]; then
  echo "ERROR: expected all $fig45_cells fig45 cells ok, got $fig45_ok"; exit 1
fi
# --resume skips each completed cell and re-runs only the failed one.
if ./target/release/repro --quick --out "$tmp/crash" --resume fig45 panic-cell \
    > "$tmp/resume.txt" 2>&1; then
  echo "ERROR: resumed panic-cell should still exit nonzero"; exit 1
fi
skips="$(grep -c "resume: skipping fig45/" "$tmp/resume.txt")"
if [ "$skips" -ne "$fig45_cells" ]; then
  echo "ERROR: resume skipped $skips of $fig45_cells completed fig45 cells"; exit 1
fi
grep -q "FAILED cell panic-cell/fixture" "$tmp/resume.txt"
echo "panic isolated per cell, manifest recorded, resume re-ran only the failure"

echo "== bench regression gate (dumbbell events/sec vs committed baseline) =="
# Re-measures the dumbbell hot path and fails if mean_ms regresses >25%
# or events/sec drops >20% against the committed BENCH_netsim.json.
# SLOWCC_SKIP_BENCH_GATE=1 skips (e.g. on shared/noisy CI machines).
if [ "${SLOWCC_SKIP_BENCH_GATE:-0}" = "1" ]; then
  echo "SLOWCC_SKIP_BENCH_GATE=1: skipping bench gate"
else
  cargo build --release -p slowcc-bench --bin bench_netsim
  ./target/release/bench_netsim --check
fi

echo "== verify OK =="
