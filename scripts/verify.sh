#!/usr/bin/env bash
# Full verification: tier-1 (release build + tests) plus smoke runs of
# the unified `repro` execution path — parallel and resumed sweeps must
# be byte-identical, scheduler backends and shard counts
# interchangeable, audits clean, a panicking cell isolated to itself,
# and the dumbbell hot path no slower than the committed benchmark
# baseline (see the bench gate at the bottom).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== workspace tests =="
cargo test -q --workspace

cargo build --release -p slowcc-experiments --bin repro
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== target list from the registry (repro list) =="
# Every target below comes from `repro list` itself, so a newly
# registered experiment is covered here without editing this script.
targets="$(./target/release/repro list \
  | awk '/^experiments:$/{f=1; next} /^aliases:$/{f=0} f{print $1}')"
if [ -z "$targets" ]; then
  echo "ERROR: repro list produced no targets"; exit 1
fi
echo "targets: $(echo "$targets" | tr '\n' ' ')"

echo "== repro --quick smoke over all listed targets (--jobs 1 vs --jobs 8) =="
# shellcheck disable=SC2086
./target/release/repro --quick $targets --jobs 1 --out "$tmp/j1" > "$tmp/stdout_j1.txt"
# shellcheck disable=SC2086
./target/release/repro --quick $targets --jobs 8 --out "$tmp/j8" > "$tmp/stdout_j8.txt"
diff -r "$tmp/j1" "$tmp/j8"
diff "$tmp/stdout_j1.txt" "$tmp/stdout_j8.txt"
echo "parallel output byte-identical to serial"

echo "== RFC conformance gate (repro conformance) =="
# The specs/ tree must parse with unique requirement ids, zero
# dangling test links, and no MUST-level requirement left `untested`
# without a recorded `deviates` rationale. Any violation panics its
# cell (FAILED cell conformance/<file>), which makes this command —
# and therefore verify — exit nonzero.
./target/release/repro --quick conformance > "$tmp/conformance.txt"
grep -q "every MUST tested or deviates" "$tmp/conformance.txt"
for rfc in rfc1122 rfc2481 rfc3448 rfc5681 rfc6298 rfc6582; do
  grep -q "$rfc" "$tmp/conformance.txt"
done
echo "conformance ledger clean over all six RFCs"

echo "== scheduler equivalence smoke (heap vs calendar) =="
SLOWCC_SCHEDULER=heap ./target/release/repro --quick fig45 --out "$tmp/heap" > /dev/null
SLOWCC_SCHEDULER=calendar ./target/release/repro --quick fig45 --out "$tmp/calendar" > /dev/null
diff -r "$tmp/heap" "$tmp/calendar"
echo "calendar-queue output byte-identical to binary heap"

echo "== shard equivalence smoke (SLOWCC_SHARDS=4, both schedulers) =="
# Conservative-parallel execution must reproduce the serial run
# byte-for-byte on either scheduler backend (DESIGN.md §5h).
SLOWCC_SHARDS=4 SLOWCC_SCHEDULER=heap \
  ./target/release/repro --quick fig45 --out "$tmp/sharded_heap" > /dev/null
SLOWCC_SHARDS=4 SLOWCC_SCHEDULER=calendar \
  ./target/release/repro --quick fig45 --out "$tmp/sharded_cal" > /dev/null
diff -r "$tmp/heap" "$tmp/sharded_heap"
diff -r "$tmp/calendar" "$tmp/sharded_cal"
echo "4-shard output byte-identical to serial on both schedulers"

echo "== audited smoke (SLOWCC_AUDIT=1, both schedulers) =="
# Strict env-var path: any invariant violation panics the run.
SLOWCC_AUDIT=1 SLOWCC_SCHEDULER=heap ./target/release/repro --quick fig45 > /dev/null
# Collect --audit path: the run reports and the exit code gates.
SLOWCC_AUDIT=1 SLOWCC_SCHEDULER=calendar ./target/release/repro --quick --audit fig45 > "$tmp/audit_calendar.txt"
grep "audit: " "$tmp/audit_calendar.txt"
grep -q " 0 timer leaks, 0 violations" "$tmp/audit_calendar.txt"
echo "audited fig45 clean under both schedulers"

echo "== chaos fault-injection smoke (SLOWCC_AUDIT=strict, both schedulers) =="
SLOWCC_AUDIT=strict SLOWCC_SCHEDULER=heap \
  ./target/release/repro --quick chaos --out "$tmp/chaos_heap" > "$tmp/chaos_heap.txt"
SLOWCC_AUDIT=strict SLOWCC_SCHEDULER=calendar \
  ./target/release/repro --quick chaos --out "$tmp/chaos_cal" > "$tmp/chaos_cal.txt"
# Same seeds, same backend, second run: must replay byte-identically.
SLOWCC_AUDIT=strict SLOWCC_SCHEDULER=calendar \
  ./target/release/repro --quick chaos --out "$tmp/chaos_cal2" > "$tmp/chaos_cal2.txt"
diff -r "$tmp/chaos_heap" "$tmp/chaos_cal"
diff -r "$tmp/chaos_cal" "$tmp/chaos_cal2"
diff "$tmp/chaos_heap.txt" "$tmp/chaos_cal.txt"
diff "$tmp/chaos_cal.txt" "$tmp/chaos_cal2.txt"
grep -q "all graceful" "$tmp/chaos_heap.txt"
echo "chaos sweep audit-clean, bit-identical across runs and schedulers"

echo "== resume replay smoke (fully cached rerun, byte-identical) =="
./target/release/repro --quick fig3 fig45 --out "$tmp/resume_base" > "$tmp/resume_stdout1.txt"
cp -r "$tmp/resume_base" "$tmp/resume_before"
./target/release/repro --quick fig3 fig45 --out "$tmp/resume_base" --resume \
  > "$tmp/resume_stdout2.txt" 2> "$tmp/resume_stderr2.txt"
diff "$tmp/resume_stdout1.txt" "$tmp/resume_stdout2.txt"
diff -r "$tmp/resume_before" "$tmp/resume_base"
grep -q "cells already ok" "$tmp/resume_stderr2.txt"
echo "resumed run replayed every cell from cache, output byte-identical"

echo "== crash isolation: deliberate panic-cell fixture =="
# A multi-cell figure rides along so the resume below demonstrably
# skips completed cells one by one rather than per target.
if ./target/release/repro --quick --out "$tmp/crash" fig45 panic-cell \
    > "$tmp/crash.txt" 2>&1; then
  echo "ERROR: panic-cell should have produced a nonzero exit"; exit 1
fi
grep -q "FAILED cell panic-cell/fixture" "$tmp/crash.txt"
grep -q '"panic-cell/fixture": {"status": "panicked"' "$tmp/crash/manifest.json"
# Every sibling figure cell survived the panic.
fig45_cells="$(grep -c '"fig45/' "$tmp/crash/manifest.json")"
fig45_ok="$(grep '"fig45/' "$tmp/crash/manifest.json" | grep -c '"status": "ok"')"
if [ "$fig45_cells" -lt 2 ] || [ "$fig45_cells" -ne "$fig45_ok" ]; then
  echo "ERROR: expected all $fig45_cells fig45 cells ok, got $fig45_ok"; exit 1
fi
# --resume skips each completed cell and re-runs only the failed one.
if ./target/release/repro --quick --out "$tmp/crash" --resume fig45 panic-cell \
    > "$tmp/resume.txt" 2>&1; then
  echo "ERROR: resumed panic-cell should still exit nonzero"; exit 1
fi
skips="$(grep -c "resume: skipping fig45/" "$tmp/resume.txt")"
if [ "$skips" -ne "$fig45_cells" ]; then
  echo "ERROR: resume skipped $skips of $fig45_cells completed fig45 cells"; exit 1
fi
grep -q "FAILED cell panic-cell/fixture" "$tmp/resume.txt"
echo "panic isolated per cell, manifest recorded, resume re-ran only the failure"

echo "== supervisor: hung and slow cells classified, quarantined, siblings survive =="
# hang-cell livelocks (zero-clock-advance loop) and slow-cell runs
# effectively forever; the budget unwinds both — threads joined, not
# abandoned — classifies them (livelock / deadline), the --retries
# re-run hits the same deterministic outcome and quarantines, and every
# fig45 sibling still completes.
if ./target/release/repro --quick --out "$tmp/sup" --retries 1 --cell-timeout 2 \
    fig45 hang-cell slow-cell > "$tmp/sup.txt" 2>&1; then
  echo "ERROR: hang-cell/slow-cell should have produced a nonzero exit"; exit 1
fi
grep -q '"hang-cell/fixture": {"status": "livelock"' "$tmp/sup/manifest.json"
grep -q '"slow-cell/fixture": {"status": "timeout"' "$tmp/sup/manifest.json"
grep -A3 '"cell": "hang-cell/fixture"' "$tmp/sup/failures.json" | grep -q '"class": "livelock"'
grep -A3 '"cell": "hang-cell/fixture"' "$tmp/sup/failures.json" | grep -q '"quarantined": true'
grep -A3 '"cell": "slow-cell/fixture"' "$tmp/sup/failures.json" | grep -q '"class": "deadline"'
grep -A3 '"cell": "slow-cell/fixture"' "$tmp/sup/failures.json" | grep -q '"quarantined": true'
sup_cells="$(grep -c '"fig45/' "$tmp/sup/manifest.json")"
sup_ok="$(grep '"fig45/' "$tmp/sup/manifest.json" | grep -c '"status": "ok"')"
if [ "$sup_cells" -lt 2 ] || [ "$sup_cells" -ne "$sup_ok" ]; then
  echo "ERROR: expected all $sup_cells fig45 cells ok beside the hung cells, got $sup_ok"; exit 1
fi
echo "livelock and deadline classified, quarantined after identical retries, siblings ok"

echo "== supervisor: SIGINT preemption is resumable byte-identically =="
# Baseline fig3 sweep, then the same sweep plus a never-finishing cell:
# once every fig3 cell has landed in the manifest, SIGINT the process.
# It must exit 130 (interrupted, resumable), record the in-flight cell
# as interrupted, and a --resume of fig3 must replay to a byte-identical
# result as if the interruption never happened.
./target/release/repro --quick fig3 --out "$tmp/sig_base" > "$tmp/sig_base.txt"
fig3_cells="$(grep -c '"fig3/' "$tmp/sig_base/manifest.json")"
./target/release/repro --quick fig3 slow-cell --jobs 2 --out "$tmp/sig" \
  > "$tmp/sig.txt" 2> "$tmp/sig_err.txt" &
sig_pid=$!
for _ in $(seq 240); do
  done_cells="$(grep '"fig3/' "$tmp/sig/manifest.json" 2>/dev/null | grep -c '"status": "ok"' || true)"
  [ "$done_cells" = "$fig3_cells" ] && break
  sleep 0.25
done
if [ "${done_cells:-0}" != "$fig3_cells" ]; then
  kill "$sig_pid" 2>/dev/null || true
  echo "ERROR: fig3 cells did not complete before the SIGINT window"; exit 1
fi
kill -INT "$sig_pid"
rc=0; wait "$sig_pid" || rc=$?
if [ "$rc" -ne 130 ]; then
  echo "ERROR: interrupted sweep exited $rc, expected 130"; exit 1
fi
grep -q '"slow-cell/fixture": {"status": "interrupted"' "$tmp/sig/manifest.json"
./target/release/repro --quick fig3 --out "$tmp/sig" --resume > "$tmp/sig_resume.txt" 2>/dev/null
diff "$tmp/sig_resume.txt" "$tmp/sig_base.txt"
for f in "$tmp/sig_base"/fig3*; do
  diff "$f" "$tmp/sig/$(basename "$f")"
done
echo "SIGINT exited 130, in-flight cell recorded interrupted, resume byte-identical"

echo "== scenario DSL smoke (repro run vs registry twin vs committed fixture) =="
# The declarative layer is a compilation target, not a second
# implementation: running the shipped chaos-twin TOML through
# `repro run` must produce bytes identical to the hidden registry twin
# compiled from the same spec, and both must match the committed
# fixture (so a silent physics or renderer drift fails verify).
./target/release/repro --quick run examples/scenarios/scenario-chaos-twin.toml \
  --out "$tmp/scn_toml" > /dev/null
./target/release/repro --quick scenario-chaos-twin --out "$tmp/scn_reg" > /dev/null
diff "$tmp/scn_toml/scenario_chaos_twin.json" "$tmp/scn_reg/scenario_chaos_twin.json"
diff "$tmp/scn_toml/scenario_chaos_twin.trace.seed1000.csv" \
     "$tmp/scn_reg/scenario_chaos_twin.trace.seed1000.csv"
diff "$tmp/scn_toml/scenario_chaos_twin.json" \
     examples/scenarios/expected/scenario_chaos_twin.json
diff "$tmp/scn_toml/scenario_chaos_twin.trace.seed1000.csv" \
     examples/scenarios/expected/scenario_chaos_twin.trace.seed1000.csv
# A malformed scenario must fail fast with a file:line diagnostic, not
# a panic and not a sweep.
if ./target/release/repro run examples/scenarios/malformed-queue.toml \
    > "$tmp/malformed.txt" 2>&1; then
  echo "ERROR: malformed scenario should have produced a nonzero exit"; exit 1
fi
grep -q 'malformed-queue.toml:12: `red_\*` keys are only valid' "$tmp/malformed.txt"
echo "scenario run byte-identical to registry twin and committed fixture; malformed rejected"

echo "== bench regression gate (dumbbell events/sec vs committed baseline) =="
# Re-measures the dumbbell hot path and fails if mean_ms regresses >25%
# or events/sec drops >20% against the committed BENCH_netsim.json, or
# if an armed (untripped) cell budget costs >2% events/sec, or if the
# streaming trace sink costs >35% wall clock / grows RSS past its O(1)
# bound on the >1M-packet run.
# SLOWCC_SKIP_BENCH_GATE=1 skips (e.g. on shared/noisy CI machines).
if [ "${SLOWCC_SKIP_BENCH_GATE:-0}" = "1" ]; then
  echo "SLOWCC_SKIP_BENCH_GATE=1: skipping bench gate"
else
  cargo build --release -p slowcc-bench --bin bench_netsim
  ./target/release/bench_netsim --check
fi

echo "== verify OK =="
