//! # slowcc
//!
//! A reproduction of *"Dynamic Behavior of Slowly-Responsive Congestion
//! Control Algorithms"* (Bansal, Balakrishnan, Floyd & Shenker, SIGCOMM
//! 2001) as a Rust workspace:
//!
//! * [`netsim`] — a deterministic packet-level discrete-event network
//!   simulator (the ns-2 stand-in): dumbbell topologies, DropTail/RED
//!   queues, scripted loss patterns, per-flow/per-link statistics.
//! * [`core`] — the congestion control agents: TCP(1/γ), SQRT(1/γ),
//!   IIAD(1/γ), RAP(1/γ), TFRC(k) (with the paper's self-clocking
//!   extension), TEAR, plus the TCP response function and the paper's
//!   closed-form models.
//! * [`traffic`] — workload generators: ON/OFF CBR sources, flash crowds
//!   of short TCP transfers, bidirectional background traffic, the
//!   hand-crafted loss scripts of Figures 17-19.
//! * [`metrics`] — stabilization time/cost, δ-fair convergence time,
//!   `f(k)` bandwidth uptake, smoothness.
//! * [`experiments`] — one module per figure; the `repro` binary
//!   regenerates every table and figure in the paper.
//!
//! ## Quickstart
//!
//! ```
//! use slowcc::netsim::prelude::*;
//! use slowcc::core::prelude::*;
//!
//! // One TCP and one TFRC flow across the paper's 10 Mb/s RED dumbbell.
//! let mut sim = Simulator::new(7);
//! let db = Dumbbell::build(&mut sim, DumbbellConfig::paper(10e6));
//! let p1 = db.add_host_pair(&mut sim);
//! let p2 = db.add_host_pair(&mut sim);
//! let tcp = Tcp::install(&mut sim, &p1, TcpConfig::standard(1000), SimTime::ZERO);
//! let tfrc = Tfrc::install(&mut sim, &p2, TfrcConfig::standard(1000), SimTime::ZERO);
//! sim.run_until(SimTime::from_secs(30));
//!
//! let from = SimTime::from_secs(10);
//! let to = SimTime::from_secs(30);
//! let t1 = sim.stats().flow_throughput_bps(tcp.flow, from, to);
//! let t2 = sim.stats().flow_throughput_bps(tfrc.flow, from, to);
//! assert!(t1 + t2 > 7e6); // together they fill most of the link
//! ```

#![forbid(unsafe_code)]

pub use slowcc_core as core;
pub use slowcc_experiments as experiments;
pub use slowcc_metrics as metrics;
pub use slowcc_netsim as netsim;
pub use slowcc_traffic as traffic;
