//! End-to-end ECN (RFC 2481, the paper's Section 4.2.2 environment):
//! RED marking instead of dropping, sender reaction to echoes, and
//! coexistence of ECN and non-ECN flows.

use slowcc::core::tcp::{Tcp, TcpConfig};
use slowcc::netsim::prelude::*;
use slowcc::netsim::queue::RedConfig;
use slowcc::netsim::time::transmission_time;

fn ecn_dumbbell(sim: &mut Simulator, bps: f64) -> Dumbbell {
    let base = DumbbellConfig::paper(bps);
    let mut red = RedConfig::paper_defaults(
        base.bdp_packets(),
        transmission_time(base.pkt_size, bps),
    );
    red.ecn = true;
    let cfg = DumbbellConfig {
        queue: QueueKind::Red(red),
        ..base
    };
    Dumbbell::build(sim, cfg)
}

/// An ECN-capable TCP flow on a marking RED queue gets congestion
/// feedback as marks, not drops, and still regulates its rate.
#[test]
fn ecn_tcp_is_marked_not_dropped() {
    let mut sim = Simulator::new(8);
    let db = ecn_dumbbell(&mut sim, 10e6);
    let pair = db.add_host_pair(&mut sim);
    let h = Tcp::install(
        &mut sim,
        &pair,
        TcpConfig::standard(1000).with_ecn(),
        SimTime::ZERO,
    );
    sim.run_until(SimTime::from_secs(60));
    let link = sim.stats().link(db.forward).unwrap();
    assert!(link.total_marks > 20, "expected marks, got {}", link.total_marks);
    // Slow start's initial overshoot outruns RED's *averaged* queue, so
    // the first congestion episode unavoidably ends in ECN-blind
    // overflow drops (RFC 3168: a full queue drops even ECN-capable
    // packets). In equilibrium, though, congestion feedback must arrive
    // as marks: judge the balance over the same window the throughput
    // assertion below uses.
    let from = SimTime::from_secs(20);
    let to = SimTime::from_secs(60);
    let drops = sim.stats().link_drops_in(db.forward, from, to);
    let marks = sim.stats().link_marks_in(db.forward, from, to);
    assert!(marks > 10, "expected steady-state marks, got {marks}");
    assert!(
        drops < marks / 4 + 1,
        "ECN should convert congestion signals to marks: {drops} drops vs {marks} marks in [20s, 60s)"
    );
    // The flow still converges to a sane operating point.
    let tput = sim.stats().flow_throughput_bps(
        h.flow,
        SimTime::from_secs(20),
        SimTime::from_secs(60),
    );
    assert!(tput > 7e6 && tput < 10.1e6, "{:.2} Mb/s", tput / 1e6);
}

/// The sender reduces once per window on an echo: under pure marking at
/// probability p its window tracks the same equilibrium a dropping link
/// would impose.
#[test]
fn ecn_reaction_tracks_the_loss_equivalent_rate() {
    use slowcc::netsim::link::BernoulliLoss;
    let p = 0.01;
    let run = |ecn: bool| -> f64 {
        let mut sim = Simulator::new(8);
        let cfg = DumbbellConfig {
            queue: QueueKind::DropTail(20_000),
            ..DumbbellConfig::paper(400e6)
        };
        let opts = if ecn {
            DumbbellOptions::new().forward_marker(Box::new(BernoulliLoss::new(p, 5)))
        } else {
            DumbbellOptions::new().forward_loss(Box::new(BernoulliLoss::new(p, 5)))
        };
        let db = Dumbbell::build_with(&mut sim, cfg, opts);
        let pair = db.add_host_pair(&mut sim);
        let mut tc = TcpConfig::standard(1000);
        if ecn {
            tc = tc.with_ecn();
        }
        let h = Tcp::install(&mut sim, &pair, tc, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(120));
        sim.stats().flow_throughput_bps(
            h.flow,
            SimTime::from_secs(30),
            SimTime::from_secs(120),
        )
    };
    let with_marks = run(true);
    let with_drops = run(false);
    let ratio = (with_marks / with_drops).max(with_drops / with_marks);
    assert!(
        ratio < 2.0,
        "marked {:.2} vs dropped {:.2} Mb/s should be comparable",
        with_marks / 1e6,
        with_drops / 1e6
    );
    // Marks avoid retransmissions entirely, so the marked flow should
    // never do *worse*.
    assert!(with_marks > 0.8 * with_drops);
}

/// ECN and non-ECN TCP share a marking RED bottleneck roughly fairly.
#[test]
fn ecn_and_non_ecn_coexist() {
    let mut sim = Simulator::new(8);
    let db = ecn_dumbbell(&mut sim, 10e6);
    let p1 = db.add_host_pair(&mut sim);
    let p2 = db.add_host_pair(&mut sim);
    let ecn = Tcp::install(
        &mut sim,
        &p1,
        TcpConfig::standard(1000).with_ecn(),
        SimTime::ZERO,
    );
    let plain = Tcp::install(
        &mut sim,
        &p2,
        TcpConfig::standard(1000),
        SimTime::from_millis(43),
    );
    sim.run_until(SimTime::from_secs(120));
    let from = SimTime::from_secs(30);
    let to = SimTime::from_secs(120);
    let a = sim.stats().flow_throughput_bps(ecn.flow, from, to);
    let b = sim.stats().flow_throughput_bps(plain.flow, from, to);
    let ratio = (a / b).max(b / a);
    assert!(
        ratio < 2.2,
        "ECN {:.2} vs non-ECN {:.2} Mb/s (ratio {ratio:.2})",
        a / 1e6,
        b / 1e6
    );
}
