//! Failure injection on the *feedback* path: congestion control must
//! survive losing its ACKs and receiver reports, not just its data.
//! The reverse bottleneck gets a loss pattern; data flows clean.

use slowcc::core::tcp::{Tcp, TcpConfig, TcpSink};
use slowcc::core::tfrc::{Tfrc, TfrcConfig};
use slowcc::netsim::link::LossPattern;
use slowcc::netsim::prelude::*;

/// Drops every `n`-th ACK packet (data passes untouched).
struct AckLoss {
    n: u64,
    seen: u64,
}
impl LossPattern for AckLoss {
    fn should_drop(&mut self, pkt: &Packet, _now: SimTime) -> bool {
        if !pkt.is_ack() {
            return false;
        }
        self.seen += 1;
        self.seen.is_multiple_of(self.n)
    }
}

/// Manual dumbbell with an ACK-dropping reverse bottleneck
/// (`Dumbbell::build_with_loss` attaches patterns to the forward link,
/// so this one is wired by hand).
fn build_ack_lossy(sim: &mut Simulator, n: u64) -> (NodeId, NodeId) {
    let cfg = DumbbellConfig::paper(10e6);
    let r1 = sim.add_node();
    let r2 = sim.add_node();
    let fwd = sim.add_link(
        r1,
        Link::new(
            r2,
            cfg.bottleneck_bps,
            cfg.bottleneck_delay,
            Box::new(DropTail::new(200)),
        ),
    );
    let rev = sim.add_link(
        r2,
        Link::new(
            r1,
            cfg.bottleneck_bps,
            cfg.bottleneck_delay,
            Box::new(DropTail::new(200)),
        )
        .with_loss(Box::new(AckLoss { n, seen: 0 })),
    );
    sim.set_default_route(r1, fwd);
    sim.set_default_route(r2, rev);
    let left = sim.add_node();
    let right = sim.add_node();
    let lu = sim.add_link(
        left,
        Link::new(r1, 1e9, SimDuration::from_millis(1), Box::new(DropTail::new(256))),
    );
    let ld = sim.add_link(
        r1,
        Link::new(left, 1e9, SimDuration::from_millis(1), Box::new(DropTail::new(256))),
    );
    let ru = sim.add_link(
        right,
        Link::new(r2, 1e9, SimDuration::from_millis(1), Box::new(DropTail::new(256))),
    );
    let rd = sim.add_link(
        r2,
        Link::new(right, 1e9, SimDuration::from_millis(1), Box::new(DropTail::new(256))),
    );
    sim.set_default_route(left, lu);
    sim.set_default_route(right, ru);
    sim.add_route(r1, left, ld);
    sim.add_route(r2, right, rd);
    (left, right)
}

/// TCP's cumulative ACKs make isolated ACK loss almost free: a transfer
/// completes with every sequence delivered even when a quarter of the
/// ACKs vanish.
#[test]
fn tcp_survives_heavy_ack_loss() {
    let mut sim = Simulator::new(4);
    let (left, right) = build_ack_lossy(&mut sim, 4); // drop 25% of ACKs
    let sink = sim.reserve_agent(right);
    sim.install_agent(sink, Box::new(TcpSink::new()), SimTime::ZERO);
    let flow = sim.new_flow();
    let wiring = slowcc::core::agent::SenderWiring {
        flow,
        dst_node: right,
        dst_agent: sink,
    };
    let cfg = TcpConfig::standard(1000).with_max_packets(2000);
    let sender = sim.add_agent(left, Box::new(Tcp::new(cfg, wiring)));
    sim.run_until(SimTime::from_secs(60));
    let s: &Tcp = sim.agent_downcast(sender).unwrap();
    assert!(s.is_done(), "transfer must complete under ACK loss");
    let k: &TcpSink = sim.agent_downcast(sink).unwrap();
    assert_eq!(k.expected(), 2000);
    // And it should not be timeout-dominated: cumulative ACKs cover the
    // gaps.
    assert!(
        s.timeouts() <= 3,
        "ACK loss should rarely force timeouts, got {}",
        s.timeouts()
    );
}

/// TFRC keeps regulating when feedback reports are lost: the no-feedback
/// timer and per-RTT reporting cadence absorb isolated report loss
/// without collapsing the rate.
#[test]
fn tfrc_survives_feedback_loss() {
    let mut sim = Simulator::new(4);
    let (left, right) = build_ack_lossy(&mut sim, 3); // drop a third of reports
    let cfg = TfrcConfig::standard(1000);
    let sink = sim.reserve_agent(right);
    sim.install_agent(
        sink,
        Box::new(slowcc::core::tfrc::TfrcSink::new(cfg)),
        SimTime::ZERO,
    );
    let flow = sim.new_flow();
    let wiring = slowcc::core::agent::SenderWiring {
        flow,
        dst_node: right,
        dst_agent: sink,
    };
    sim.add_agent(left, Box::new(Tfrc::new(cfg, wiring)));
    sim.run_until(SimTime::from_secs(60));
    let tput = sim.stats().flow_throughput_bps(
        flow,
        SimTime::from_secs(20),
        SimTime::from_secs(60),
    );
    assert!(
        tput > 4e6,
        "TFRC should hold most of a clean 10 Mb/s path under report loss, got {:.2} Mb/s",
        tput / 1e6
    );
}
