//! Failure injection on the *feedback* path: congestion control must
//! survive losing its ACKs and receiver reports, not just its data.
//! The reverse bottleneck gets a loss pattern; data flows clean.
//!
//! Every flavor family is covered: window-based with cumulative ACKs
//! (TCP, SQRT, IIAD), rate-based (RAP), and equation-based (TFRC).

use slowcc::core::rap::{Rap, RapConfig};
use slowcc::core::tcp::{Tcp, TcpConfig, TcpSink};
use slowcc::core::tfrc::{Tfrc, TfrcConfig};
use slowcc::netsim::link::LossPattern;
use slowcc::netsim::prelude::*;
use slowcc::netsim::topology::QueueKind;

/// Drops every `n`-th ACK packet (data passes untouched).
struct AckLoss {
    n: u64,
    seen: u64,
}
impl LossPattern for AckLoss {
    fn should_drop(&mut self, pkt: &Packet, _now: SimTime) -> bool {
        if !pkt.is_ack() {
            return false;
        }
        self.seen += 1;
        self.seen.is_multiple_of(self.n)
    }
}

/// The paper dumbbell with an ACK-dropping reverse bottleneck, via
/// [`DumbbellOptions::reverse_loss`]. DropTail rather than RED so
/// the only loss process in the experiment is the scripted one.
fn build_ack_lossy(sim: &mut Simulator, n: u64) -> HostPair {
    let mut cfg = DumbbellConfig::paper(10e6);
    cfg.queue = QueueKind::DropTail(200);
    let db = Dumbbell::build_with(
        sim,
        cfg,
        DumbbellOptions::new().reverse_loss(Box::new(AckLoss { n, seen: 0 })),
    );
    db.add_host_pair(sim)
}

/// Mean goodput over the steady-state window, in bits per second.
fn steady_tput(sim: &Simulator, flow: FlowId) -> f64 {
    sim.stats()
        .flow_throughput_bps(flow, SimTime::from_secs(20), SimTime::from_secs(60))
}

/// TCP's cumulative ACKs make isolated ACK loss almost free: a transfer
/// completes with every sequence delivered even when a quarter of the
/// ACKs vanish.
#[test]
fn tcp_survives_heavy_ack_loss() {
    let mut sim = Simulator::new(4);
    let pair = build_ack_lossy(&mut sim, 4); // drop 25% of ACKs
    let cfg = TcpConfig::standard(1000).with_max_packets(2000);
    let h = Tcp::install(&mut sim, &pair, cfg, SimTime::ZERO);
    sim.run_until(SimTime::from_secs(60));
    let s: &Tcp = sim.agent_downcast(h.sender).unwrap();
    assert!(s.is_done(), "transfer must complete under ACK loss");
    let k: &TcpSink = sim.agent_downcast(h.sink).unwrap();
    assert_eq!(k.expected(), 2000);
    // And it should not be timeout-dominated: cumulative ACKs cover the
    // gaps.
    assert!(
        s.timeouts() <= 3,
        "ACK loss should rarely force timeouts, got {}",
        s.timeouts()
    );
}

/// Goodput in the final 10 seconds — zero means the flow wedged.
fn still_progressing(sim: &Simulator, flow: FlowId) -> bool {
    sim.stats()
        .flow_rx_bytes_in(flow, SimTime::from_secs(50), SimTime::from_secs(60))
        > 0
}

/// The binomial flavors are *measurably* more fragile here than standard
/// TCP: their mild decrease rides with a large window, every overflow
/// loses a burst, and the SACK-less cumulative recovery repairs one hole
/// per RTT — so heavy ACK loss costs them real throughput where TCP's
/// halving keeps loss events small. The robustness contract is therefore
/// graceful degradation, not full utilization: light loss keeps most of
/// the pipe, heavy loss degrades smoothly and never wedges the flow.
#[test]
fn sqrt_degrades_gracefully_under_ack_loss() {
    // Light (1/16) report loss: most of the pipe survives.
    let mut sim = Simulator::new(4);
    let pair = build_ack_lossy(&mut sim, 16);
    let h = Tcp::install(&mut sim, &pair, TcpConfig::sqrt_gamma(2.0, 1000), SimTime::ZERO);
    sim.run_until(SimTime::from_secs(60));
    let light = steady_tput(&sim, h.flow);
    assert!(
        light > 3e6,
        "SQRT under light ACK loss should keep most of 10 Mb/s, got {:.2} Mb/s",
        light / 1e6
    );

    // Heavy (1/4) loss: degraded but alive, no deadlock, no timeout storm.
    let mut sim = Simulator::new(4);
    let pair = build_ack_lossy(&mut sim, 4);
    let h = Tcp::install(&mut sim, &pair, TcpConfig::sqrt_gamma(2.0, 1000), SimTime::ZERO);
    sim.run_until(SimTime::from_secs(60));
    let heavy = steady_tput(&sim, h.flow);
    assert!(
        heavy > 0.5e6 && heavy < light,
        "SQRT under heavy ACK loss should degrade smoothly, got {:.2} Mb/s (light: {:.2})",
        heavy / 1e6,
        light / 1e6
    );
    assert!(still_progressing(&sim, h.flow), "SQRT wedged under ACK loss");
}

/// Same contract for IIAD(1/2), whose inverse increase is the slowest to
/// rebuild after a loss event.
#[test]
fn iiad_degrades_gracefully_under_ack_loss() {
    let mut sim = Simulator::new(4);
    let pair = build_ack_lossy(&mut sim, 16);
    let h = Tcp::install(&mut sim, &pair, TcpConfig::iiad_gamma(2.0, 1000), SimTime::ZERO);
    sim.run_until(SimTime::from_secs(60));
    let light = steady_tput(&sim, h.flow);
    assert!(
        light > 3e6,
        "IIAD under light ACK loss should keep most of 10 Mb/s, got {:.2} Mb/s",
        light / 1e6
    );

    let mut sim = Simulator::new(4);
    let pair = build_ack_lossy(&mut sim, 4);
    let h = Tcp::install(&mut sim, &pair, TcpConfig::iiad_gamma(2.0, 1000), SimTime::ZERO);
    sim.run_until(SimTime::from_secs(60));
    let heavy = steady_tput(&sim, h.flow);
    assert!(
        heavy > 0.5e6 && heavy < light,
        "IIAD under heavy ACK loss should degrade smoothly, got {:.2} Mb/s (light: {:.2})",
        heavy / 1e6,
        light / 1e6
    );
    assert!(still_progressing(&sim, h.flow), "IIAD wedged under ACK loss");
}

/// RAP detects loss from *gaps in the ACK sequence* (its receiver ACKs
/// every packet), so a dropped ACK is indistinguishable from a dropped
/// data packet: 25% ACK loss reads as 25% congestion and the rate backs
/// way off. That steep response is the algorithm working as specified —
/// what robustness requires is that the flow never stalls outright.
#[test]
fn rap_backs_off_but_never_stalls_under_ack_loss() {
    let mut sim = Simulator::new(4);
    let pair = build_ack_lossy(&mut sim, 4);
    let h = Rap::install(&mut sim, &pair, RapConfig::rap_gamma(2.0, 1000), SimTime::ZERO);
    sim.run_until(SimTime::from_secs(60));
    let tput = steady_tput(&sim, h.flow);
    assert!(
        tput > 0.2e6,
        "RAP should keep a working rate under ACK loss, got {:.2} Mb/s",
        tput / 1e6
    );
    assert!(still_progressing(&sim, h.flow), "RAP wedged under ACK loss");

    // And with mild report thinning it recovers most of its clean rate.
    let mut sim = Simulator::new(4);
    let pair = build_ack_lossy(&mut sim, 64);
    let h = Rap::install(&mut sim, &pair, RapConfig::rap_gamma(2.0, 1000), SimTime::ZERO);
    sim.run_until(SimTime::from_secs(60));
    let mild = steady_tput(&sim, h.flow);
    assert!(
        mild > tput,
        "lighter ACK loss should cost RAP less: 1/64 gave {:.2} Mb/s vs 1/4 giving {:.2}",
        mild / 1e6,
        tput / 1e6
    );
}

/// TFRC keeps regulating when feedback reports are lost: the no-feedback
/// timer and per-RTT reporting cadence absorb isolated report loss
/// without collapsing the rate.
#[test]
fn tfrc_survives_feedback_loss() {
    let mut sim = Simulator::new(4);
    let pair = build_ack_lossy(&mut sim, 3); // drop a third of reports
    let h = Tfrc::install(&mut sim, &pair, TfrcConfig::standard(1000), SimTime::ZERO);
    sim.run_until(SimTime::from_secs(60));
    let tput = steady_tput(&sim, h.flow);
    assert!(
        tput > 4e6,
        "TFRC should hold most of a clean 10 Mb/s path under report loss, got {:.2} Mb/s",
        tput / 1e6
    );
}
