//! Property-based tests of cross-crate invariants, driven by proptest.
//!
//! These exercise the simulator and agents under randomized
//! configurations (rates, buffer sizes, flow mixes, loss patterns) and
//! check conservation laws and estimator invariants that must hold for
//! *every* configuration, not just the paper's.

use proptest::prelude::*;

use slowcc::core::aimd::BinomialParams;
use slowcc::core::tfrc::{tfrc_weights, LossHistory};
use slowcc::experiments::flavor::Flavor;
use slowcc::netsim::prelude::*;

/// Build a dumbbell with `n` flows of a flavor chosen by `which` and run
/// briefly.
fn run_mix(
    seed: u64,
    bottleneck_mbps: f64,
    which: usize,
    n_flows: usize,
) -> (Simulator, Dumbbell, Vec<slowcc::core::agent::FlowHandle>) {
    let flavors = [
        Flavor::standard_tcp(),
        Flavor::Tcp { gamma: 8.0 },
        Flavor::Sqrt { gamma: 2.0 },
        Flavor::standard_tfrc(),
        Flavor::Rap { gamma: 2.0 },
    ];
    let flavor = flavors[which % flavors.len()];
    let mut sim = Simulator::new(seed);
    let db = Dumbbell::build(&mut sim, DumbbellConfig::paper(bottleneck_mbps * 1e6));
    let handles: Vec<_> = (0..n_flows)
        .map(|i| {
            let pair = db.add_host_pair(&mut sim);
            flavor.install(&mut sim, &pair, 1000, SimTime::from_millis(53 * i as u64), None)
        })
        .collect();
    sim.run_until(SimTime::from_secs(8));
    (sim, db, handles)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full simulation; keep the count sane
        .. ProptestConfig::default()
    })]

    /// Conservation at the bottleneck: packets offered = packets dropped
    /// + packets serialized (+ at most one in flight per direction).
    #[test]
    fn bottleneck_conserves_packets(
        seed in 0u64..1000,
        mbps in 2.0f64..20.0,
        which in 0usize..5,
        n in 1usize..5,
    ) {
        let (sim, db, _) = run_mix(seed, mbps, which, n);
        for link in [db.forward, db.reverse] {
            let l = sim.stats().link(link).unwrap();
            let tx_packets: u64 = l.tx_bytes.iter().sum::<u64>(); // bytes, not packets
            let _ = tx_packets;
            // arrivals == drops + serialized + queued + in-service.
            let queued = sim.link_queue_len(link) as u64;
            let serialized = l.total_arrivals - l.total_drops - queued;
            // The serialized count can exceed what completed by at most 1
            // (packet in flight when the run stopped).
            prop_assert!(serialized <= l.total_arrivals);
            prop_assert!(l.total_drops + queued <= l.total_arrivals);
        }
    }

    /// End-to-end conservation: a flow never delivers more bytes than its
    /// source sent, and with loss-free access links the difference is
    /// bounded by bottleneck drops plus in-flight data.
    #[test]
    fn flows_never_deliver_more_than_sent(
        seed in 0u64..1000,
        mbps in 2.0f64..20.0,
        which in 0usize..5,
        n in 1usize..5,
    ) {
        let (sim, _, handles) = run_mix(seed, mbps, which, n);
        for h in &handles {
            let f = sim.stats().flow(h.flow).unwrap();
            prop_assert!(
                f.total_rx_bytes <= f.total_tx_bytes,
                "flow {:?} delivered {} of {} sent",
                h.flow, f.total_rx_bytes, f.total_tx_bytes
            );
        }
    }

    /// The TFRC loss-interval estimator is scale-consistent: uniform
    /// intervals of I give exactly p = 1/I, for any history length.
    #[test]
    fn loss_history_uniform_intervals(k in 1usize..64, interval in 1u64..10_000) {
        let mut h = LossHistory::new(k, false);
        for _ in 0..k {
            h.record_interval(interval);
        }
        let p = h.loss_event_rate(1);
        prop_assert!((p - 1.0 / interval as f64).abs() < 1e-9);
    }

    /// The open-interval rule is monotone: growing the open interval can
    /// only lower (never raise) the estimated loss rate.
    #[test]
    fn loss_history_open_interval_monotone(
        k in 1usize..32,
        intervals in prop::collection::vec(1u64..5000, 1..40),
    ) {
        let mut h = LossHistory::new(k, false);
        for i in intervals {
            h.record_interval(i);
        }
        let mut last = f64::INFINITY;
        for open in [0u64, 1, 10, 100, 1_000, 10_000, 100_000] {
            let p = h.loss_event_rate(open);
            prop_assert!(p <= last + 1e-12, "p grew from {last} to {p} at open={open}");
            last = p;
        }
    }

    /// TFRC weights: correct length, in (0, 1], non-increasing.
    #[test]
    fn tfrc_weights_are_well_formed(k in 1usize..512) {
        let w = tfrc_weights(k);
        prop_assert_eq!(w.len(), k);
        for i in 0..k {
            prop_assert!(w[i] > 0.0 && w[i] <= 1.0);
            if i > 0 {
                prop_assert!(w[i] <= w[i - 1] + 1e-12);
            }
        }
    }

    /// Binomial window rules: decrease never goes below one packet and is
    /// always a decrease; per-ACK increase is positive and bounded by the
    /// per-RTT increase.
    #[test]
    fn binomial_params_are_sane(
        gamma in 1.0f64..512.0,
        w in 1.0f64..10_000.0,
        l01 in 0.0f64..1.0,
    ) {
        let params = BinomialParams::binomial_anchored(1.0 - l01, l01, gamma, 15.0);
        let down = params.decrease(w);
        prop_assert!(down >= 1.0);
        prop_assert!(down <= w.max(1.0));
        let up = params.increase_per_ack(w);
        prop_assert!(up > 0.0);
        prop_assert!(up <= params.a, "per-ACK {up} > per-RTT {}", params.a);
        let rel = params.relative_decrease(w);
        prop_assert!((0.0..=1.0).contains(&rel));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// RED never drops when the queue stays below min_thresh, never
    /// accepts beyond its hard capacity, and its average stays within
    /// [0, capacity].
    #[test]
    fn red_invariants_under_random_traffic(
        seed in 0u64..10_000,
        ops in prop::collection::vec(prop::bool::ANY, 1..400),
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        use slowcc::netsim::ids::{AgentId, FlowId, NodeId};
        use slowcc::netsim::packet::{DataInfo, Packet, Payload};
        use slowcc::netsim::pool::PacketPool;
        use slowcc::netsim::queue::{EnqueueResult, QueueDiscipline, Red, RedConfig};

        let cfg = RedConfig {
            capacity: 50,
            min_thresh: 5.0,
            max_thresh: 15.0,
            max_p: 0.1,
            weight: 0.02,
            mean_pkt_time: SimDuration::from_millis(1),
            gentle: false,
            ecn: false,
        };
        let mut q = Red::new(cfg);
        let mut pool = PacketPool::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = SimTime::ZERO;
        let mut uid = 0u64;
        for enqueue in ops {
            t += SimDuration::from_micros(500);
            if enqueue {
                let pkt = Packet {
                    uid,
                    flow: FlowId::from_index(0),
                    seq: uid,
                    size: 1000,
                    payload: Payload::Data(DataInfo::default()),
                    src_node: NodeId::from_index(0),
                    dst_node: NodeId::from_index(1),
                    src_agent: AgentId::from_index(0),
                    dst_agent: AgentId::from_index(1),
                    sent_at: t,
                    ecn: Default::default(),
                };
                uid += 1;
                let id = pool.insert(pkt);
                if q.enqueue(id, &mut pool, t, &mut rng) == EnqueueResult::Dropped {
                    pool.remove(id);
                }
                prop_assert!(q.len() <= cfg.capacity);
            } else {
                if let Some(id) = q.dequeue(t) {
                    pool.remove(id);
                }
            }
            prop_assert!(q.average() >= 0.0);
            prop_assert!(q.average() <= cfg.capacity as f64 + 1.0);
        }
    }
}
