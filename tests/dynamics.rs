//! Integration tests of the paper's *dynamic* headline claims, each run
//! end-to-end through the full stack (simulator + agents + traffic +
//! metrics) at reduced scale.

use slowcc::experiments::flavor::Flavor;
use slowcc::experiments::onset::{onset_stabilization, run_onset, OnsetConfig};
use slowcc::experiments::scale::Scale;
use slowcc::metrics::prelude::*;
use slowcc::netsim::prelude::*;
use slowcc::traffic::prelude::*;

/// "The Ugly" (Section 4.1): rate-based SlowCC without packet
/// conservation causes the longest overload after a bandwidth collapse;
/// adding self-clocking to TFRC repairs it; window-based algorithms are
/// safe at any slowness.
#[test]
fn packet_conservation_is_the_safety_mechanism() {
    let cfg = OnsetConfig::for_scale(Scale::Quick);
    let cost = |flavor: Flavor| {
        let sc = run_onset(flavor, &cfg, 7);
        onset_stabilization(&sc, &cfg).cost
    };
    let tcp_slow = cost(Flavor::Tcp { gamma: 64.0 });
    let sqrt_slow = cost(Flavor::Sqrt { gamma: 64.0 });
    let rap_slow = cost(Flavor::Rap { gamma: 64.0 });
    let tfrc_slow = cost(Flavor::Tfrc { k: 64, self_clocking: false });
    let tfrc_sc = cost(Flavor::Tfrc { k: 64, self_clocking: true });

    // The rate-based, non-self-clocked algorithms pay far more than the
    // self-clocked window algorithms.
    let window_worst = tcp_slow.max(sqrt_slow);
    assert!(
        rap_slow > 2.0 * window_worst,
        "RAP(1/64) cost {rap_slow:.2} should dwarf window algorithms' {window_worst:.2}"
    );
    assert!(
        tfrc_slow > 1.5 * window_worst,
        "TFRC(64) cost {tfrc_slow:.2} should exceed window algorithms' {window_worst:.2}"
    );
    // The paper's fix works.
    assert!(
        tfrc_sc < tfrc_slow / 1.5,
        "self-clocking should cut TFRC's cost: {tfrc_sc:.2} vs {tfrc_slow:.2}"
    );
}

/// "The Bad" (Section 4.2.1): under oscillating bandwidth TCP takes more
/// than its share from TFRC, but TFRC never mistreats TCP — the
/// asymmetry that makes SlowCC safe to deploy yet personally costly.
#[test]
fn slowcc_loses_to_tcp_under_oscillation_but_never_wins() {
    let mut sim = Simulator::new(17);
    let db = Dumbbell::build(&mut sim, DumbbellConfig::paper(15e6));
    let cbr_pair = db.add_host_pair(&mut sim);
    install_cbr(
        &mut sim,
        &cbr_pair,
        RateSchedule::SquareWave {
            rate_bps: 10e6,
            half_period: SimDuration::from_secs(2),
        },
        1000,
        SimTime::ZERO,
    );
    let mut install = |flavor: Flavor, off: u64| -> Vec<_> {
        (0..3)
            .map(|i| {
                let pair = db.add_host_pair(&mut sim);
                flavor.install(&mut sim, &pair, 1000, SimTime::from_millis(off + 67 * i), None)
            })
            .collect()
    };
    let tcp = install(Flavor::standard_tcp(), 0);
    let tfrc = install(Flavor::standard_tfrc(), 29);
    sim.run_until(SimTime::from_secs(90));

    let from = SimTime::from_secs(15);
    let to = SimTime::from_secs(90);
    let sum = |hs: &[slowcc::core::agent::FlowHandle]| -> f64 {
        hs.iter()
            .map(|h| sim.stats().flow_throughput_bps(h.flow, from, to))
            .sum()
    };
    let tcp_total = sum(&tcp);
    let tfrc_total = sum(&tfrc);
    assert!(
        tcp_total > tfrc_total,
        "TCP should out-earn TFRC under oscillation: {:.2} vs {:.2} Mb/s",
        tcp_total / 1e6,
        tfrc_total / 1e6
    );
    // ...but TFRC still gets a substantial share (not starved).
    assert!(
        tfrc_total > 0.35 * tcp_total,
        "TFRC should not be starved: {:.2} vs {:.2} Mb/s",
        tfrc_total / 1e6,
        tcp_total / 1e6
    );
}

/// "The Good" (Section 4.3): under steady loss TFRC's delivered rate is
/// much smoother than standard TCP's, at comparable throughput — the
/// reason SlowCC exists.
#[test]
fn tfrc_buys_smoothness_without_losing_throughput_in_steady_state() {
    let run = |flavor: Flavor| -> (f64, f64) {
        let mut sim = Simulator::new(13);
        let cfg = DumbbellConfig {
            queue: QueueKind::DropTail(4000),
            ..DumbbellConfig::paper(100e6)
        };
        let db = Dumbbell::build_with(
            &mut sim,
            cfg,
            // steady 1% loss
            DumbbellOptions::new().forward_loss(Box::new(CountPhases::new(vec![(100, 1)]))),
        );
        let pair = db.add_host_pair(&mut sim);
        let h = flavor.install(&mut sim, &pair, 1000, SimTime::ZERO, None);
        let end = SimTime::from_secs(60);
        sim.run_until(end);
        let series: Vec<f64> = sim
            .stats()
            .flow_rate_series_bps(h.flow, SimDuration::from_millis(500), end)
            .into_iter()
            .skip(20)
            .collect();
        (
            sim.stats()
                .flow_throughput_bps(h.flow, SimTime::from_secs(10), end),
            coefficient_of_variation(&series),
        )
    };
    let (tcp_tput, tcp_cov) = run(Flavor::standard_tcp());
    let (tfrc_tput, tfrc_cov) = run(Flavor::standard_tfrc());
    assert!(
        tfrc_cov < 0.6 * tcp_cov,
        "TFRC CoV {tfrc_cov:.3} should be well below TCP's {tcp_cov:.3}"
    );
    assert!(
        tfrc_tput > 0.5 * tcp_tput && tfrc_tput < 2.0 * tcp_tput,
        "TFRC throughput {:.2} Mb/s should be comparable to TCP's {:.2} Mb/s",
        tfrc_tput / 1e6,
        tcp_tput / 1e6
    );
}

/// Transient fairness (Section 4.2.2): a newly arriving standard-TCP
/// flow reaches a 0.1-fair share against an entrenched one within a
/// reasonable time, and TCP(1/32) takes substantially longer.
#[test]
fn gentler_decrease_slows_convergence_to_fairness() {
    use slowcc::core::tcp::{Tcp, TcpConfig};
    let run = |gamma: f64| -> Option<f64> {
        let mut sim = Simulator::new(3);
        let db = Dumbbell::build(&mut sim, DumbbellConfig::paper(10e6));
        let pipe = 1.5 * db.bdp_packets();
        let p1 = db.add_host_pair(&mut sim);
        let p2 = db.add_host_pair(&mut sim);
        let mut c1 = TcpConfig::tcp_gamma(gamma, 1000);
        c1.init_cwnd = pipe;
        c1.init_ssthresh = 1.0;
        let h1 = Tcp::install(&mut sim, &p1, c1, SimTime::ZERO);
        let mut c2 = TcpConfig::tcp_gamma(gamma, 1000);
        c2.init_cwnd = 1.0;
        c2.init_ssthresh = 1.0;
        let start2 = SimTime::from_secs(5);
        let h2 = Tcp::install(&mut sim, &p2, c2, start2);
        let horizon = SimTime::from_secs(120);
        sim.run_until(horizon);
        delta_fair_convergence_time(
            sim.stats(),
            h1.flow,
            h2.flow,
            10e6,
            &ConvergenceConfig {
                delta: 0.1,
                window: SimDuration::from_secs(2),
                from: start2,
                horizon,
            },
        )
        .map(|d| d.as_secs_f64())
    };
    let fast = run(2.0).expect("standard TCP converges");
    let slow = run(32.0).unwrap_or(115.0);
    assert!(fast < 30.0, "TCP(1/2) took {fast:.1} s to 0.1-fairness");
    assert!(
        slow > 1.5 * fast,
        "TCP(1/32) ({slow:.1} s) should converge much slower than TCP(1/2) ({fast:.1} s)"
    );
}

/// A responsive flow over heavy-tailed (Pareto ON/OFF) background
/// traffic — the "ON-OFF background traffic" environment the paper's
/// Section 2 cites from the TFRC evaluations. Both TCP and TFRC must
/// keep operating (no wedge, no starvation) and together with the
/// background keep the link busy.
#[test]
fn responsive_flows_survive_self_similar_background() {
    use slowcc::traffic::cbr::{install_pareto_onoff, ParetoOnOffConfig};

    let mut sim = Simulator::new(41);
    let db = Dumbbell::build(&mut sim, DumbbellConfig::paper(10e6));
    // Four bursty sources averaging ~1 Mb/s each.
    for i in 0..4u64 {
        let pair = db.add_host_pair(&mut sim);
        install_pareto_onoff(
            &mut sim,
            &pair,
            ParetoOnOffConfig::standard(2e6, 1000),
            SimTime::from_millis(17 * i),
        );
    }
    let p1 = db.add_host_pair(&mut sim);
    let tcp = Flavor::standard_tcp().install(&mut sim, &p1, 1000, SimTime::ZERO, None);
    let p2 = db.add_host_pair(&mut sim);
    let tfrc = Flavor::standard_tfrc().install(&mut sim, &p2, 1000, SimTime::from_millis(7), None);
    sim.run_until(SimTime::from_secs(90));

    let from = SimTime::from_secs(20);
    let to = SimTime::from_secs(90);
    let t1 = sim.stats().flow_throughput_bps(tcp.flow, from, to);
    let t2 = sim.stats().flow_throughput_bps(tfrc.flow, from, to);
    // ~4 Mb/s of background leaves ~6 Mb/s for the two responsive flows.
    assert!(
        t1 > 1e6 && t2 > 1e6,
        "responsive flows starved: TCP {:.2}, TFRC {:.2} Mb/s",
        t1 / 1e6,
        t2 / 1e6
    );
    assert!(
        t1 + t2 > 3.5e6,
        "combined responsive throughput too low: {:.2} Mb/s",
        (t1 + t2) / 1e6
    );
    // And they split their share within a broad compatibility band.
    let ratio = (t1 / t2).max(t2 / t1);
    assert!(ratio < 3.0, "TCP {:.2} vs TFRC {:.2} Mb/s", t1 / 1e6, t2 / 1e6);
}
