//! Integration tests of the *static* TCP-compatibility property that the
//! whole paper builds on: under steady conditions, every SlowCC variant
//! obtains roughly the same long-run throughput as TCP (Section 2's
//! definition, "on time scales of several round-trip times ... roughly
//! the same throughput as a TCP connection in steady-state").

use slowcc::experiments::flavor::Flavor;
use slowcc::metrics::prelude::*;
use slowcc::netsim::prelude::*;

/// Run one flow of `a` and one of `b` sharing the paper's dumbbell;
/// return their long-run throughputs.
fn share_link(a: Flavor, b: Flavor, secs: u64, seed: u64) -> (f64, f64) {
    let mut sim = Simulator::new(seed);
    let db = Dumbbell::build(&mut sim, DumbbellConfig::paper(10e6));
    let p1 = db.add_host_pair(&mut sim);
    let p2 = db.add_host_pair(&mut sim);
    let h1 = a.install(&mut sim, &p1, 1000, SimTime::ZERO, None);
    let h2 = b.install(&mut sim, &p2, 1000, SimTime::from_millis(97), None);
    sim.run_until(SimTime::from_secs(secs));
    let from = SimTime::from_secs(secs / 4);
    let to = SimTime::from_secs(secs);
    (
        sim.stats().flow_throughput_bps(h1.flow, from, to),
        sim.stats().flow_throughput_bps(h2.flow, from, to),
    )
}

/// Each deployable SlowCC variant must share a static link with TCP
/// within a factor the TCP-friendliness literature considers compatible.
#[test]
fn slowcc_variants_share_fairly_with_tcp() {
    let variants = [
        (Flavor::Tcp { gamma: 8.0 }, 2.2),
        (Flavor::Sqrt { gamma: 2.0 }, 2.2),
        (Flavor::standard_tfrc(), 2.5),
        (Flavor::Rap { gamma: 2.0 }, 2.2),
    ];
    for (other, tolerance) in variants {
        let (tcp, slow) = share_link(Flavor::standard_tcp(), other, 180, 11);
        let ratio = (tcp / slow).max(slow / tcp);
        assert!(
            ratio < tolerance,
            "{} vs TCP: {:.2} vs {:.2} Mb/s (ratio {ratio:.2} > {tolerance})",
            other.label(),
            slow / 1e6,
            tcp / 1e6
        );
        // And together they should use most of the link.
        assert!(tcp + slow > 7e6, "{}: combined only {:.2} Mb/s", other.label(), (tcp + slow) / 1e6);
    }
}

/// A whole population of mixed algorithms shares with high Jain index —
/// the "TCP-compatible paradigm" the paper's conclusion argues for.
#[test]
fn mixed_population_is_equitable() {
    let mut sim = Simulator::new(23);
    let db = Dumbbell::build(&mut sim, DumbbellConfig::paper(15e6));
    let population = [
        Flavor::standard_tcp(),
        Flavor::standard_tcp(),
        Flavor::Tcp { gamma: 8.0 },
        Flavor::Sqrt { gamma: 2.0 },
        Flavor::standard_tfrc(),
        Flavor::standard_tfrc(),
        Flavor::Rap { gamma: 2.0 },
        Flavor::Iiad { gamma: 2.0 },
    ];
    let handles: Vec<_> = population
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let pair = db.add_host_pair(&mut sim);
            f.install(&mut sim, &pair, 1000, SimTime::from_millis(83 * i as u64), None)
        })
        .collect();
    sim.run_until(SimTime::from_secs(180));
    let from = SimTime::from_secs(45);
    let to = SimTime::from_secs(180);
    let rates: Vec<f64> = handles
        .iter()
        .map(|h| sim.stats().flow_throughput_bps(h.flow, from, to))
        .collect();
    let jain = jain_index(&rates);
    assert!(
        jain > 0.8,
        "mixed population Jain index {jain:.3} too low: {rates:?}"
    );
    assert!(rates.iter().sum::<f64>() > 11e6, "poor utilization: {rates:?}");
}

/// TCP(1/γ) remains TCP-compatible across the γ range used in the paper
/// under *static* conditions — the premise the dynamic experiments then
/// stress.
#[test]
fn tcp_gamma_family_is_statically_compatible() {
    for gamma in [4.0, 16.0] {
        let (tcp, slow) = share_link(Flavor::standard_tcp(), Flavor::Tcp { gamma }, 240, 31);
        let ratio = (tcp / slow).max(slow / tcp);
        assert!(
            ratio < 2.5,
            "TCP(1/{gamma}) vs TCP ratio {ratio:.2}: {:.2} vs {:.2} Mb/s",
            slow / 1e6,
            tcp / 1e6
        );
    }
}
