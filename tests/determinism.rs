//! Whole-stack determinism: identical seeds reproduce identical runs
//! bit-for-bit, across every agent type and a nontrivial dynamic
//! scenario. This is the property that makes every number in
//! EXPERIMENTS.md regenerable.

use slowcc::experiments::flavor::Flavor;
use slowcc::netsim::prelude::*;
use slowcc::traffic::prelude::*;

/// A fingerprint of a finished run: totals for every flow and the
/// bottleneck counters.
fn fingerprint(seed: u64) -> Vec<u64> {
    let mut sim = Simulator::new(seed);
    let db = Dumbbell::build(&mut sim, DumbbellConfig::paper(10e6));
    let cbr_pair = db.add_host_pair(&mut sim);
    install_cbr(
        &mut sim,
        &cbr_pair,
        RateSchedule::SquareWave {
            rate_bps: 5e6,
            half_period: SimDuration::from_millis(700),
        },
        1000,
        SimTime::ZERO,
    );
    let flavors = [
        Flavor::standard_tcp(),
        Flavor::standard_tfrc(),
        Flavor::Rap { gamma: 2.0 },
        Flavor::Sqrt { gamma: 8.0 },
        Flavor::Tear,
    ];
    let handles: Vec<_> = flavors
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let pair = db.add_host_pair(&mut sim);
            f.install(&mut sim, &pair, 1000, SimTime::from_millis(41 * i as u64), None)
        })
        .collect();
    sim.run_until(SimTime::from_secs(30));

    let mut fp = Vec::new();
    for h in &handles {
        let f = sim.stats().flow(h.flow).unwrap();
        fp.push(f.total_rx_bytes);
        fp.push(f.total_rx_packets);
        fp.push(f.total_tx_bytes);
    }
    let l = sim.stats().link(db.forward).unwrap();
    fp.push(l.total_arrivals);
    fp.push(l.total_drops);
    fp.push(l.total_tx_bytes);
    fp
}

#[test]
fn identical_seeds_reproduce_exactly() {
    assert_eq!(fingerprint(1234), fingerprint(1234));
}

#[test]
fn different_seeds_differ() {
    // RED's randomized early drops guarantee divergence.
    assert_ne!(fingerprint(1), fingerprint(2));
}
